//! Measurement helpers: latency distributions and rate counters used by the
//! workload generators and the experiment harness.

use crate::time::{SimDuration, SimTime};

/// Accumulates latency samples and reports summary statistics.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0.0–1.0); zero if empty.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let idx = ((self.samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        SimDuration::from_nanos(self.samples[idx])
    }

    /// Largest sample; zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Counts events over a window to produce a rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateCounter {
    count: u64,
    started: SimTime,
}

impl RateCounter {
    /// Creates a counter whose window opens at `start`.
    pub fn new(start: SimTime) -> Self {
        RateCounter {
            count: 0,
            started: start,
        }
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Total events counted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Events per second as of `now`; zero for an empty window.
    pub fn rate(&self, now: SimTime) -> f64 {
        let secs = (now - self.started).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }
}

/// A labelled (x, y) series, the output unit of every figure harness.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label, e.g. `"Slice-4"`.
    pub label: String,
    /// The data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders the series as aligned text rows, one `x y` pair per line.
    pub fn to_rows(&self) -> String {
        let mut out = String::new();
        for (x, y) in &self.points {
            out.push_str(&format!("{x:>12.3} {y:>14.3}\n"));
        }
        out
    }
}

/// Renders a table of series side by side for terminal output, with the x
/// column first and one column per series.
pub fn render_table(x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>12}", x_label));
    for s in series {
        out.push_str(&format!(" {:>14}", s.label));
    }
    out.push_str(&format!("   ({y_label})\n"));
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        out.push_str(&format!("{x:>12.2}"));
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => out.push_str(&format!(" {y:>14.2}")),
                None => out.push_str(&format!(" {:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary() {
        let mut l = LatencyStats::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            l.record(SimDuration::from_millis(ms));
        }
        assert_eq!(l.count(), 10);
        assert_eq!(l.mean(), SimDuration::from_micros(5500));
        assert_eq!(l.quantile(0.5), SimDuration::from_millis(6));
        assert_eq!(l.quantile(1.0), SimDuration::from_millis(10));
        assert_eq!(l.max(), SimDuration::from_millis(10));
    }

    #[test]
    fn empty_latency_is_zero() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), SimDuration::ZERO);
        assert_eq!(l.quantile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        a.record(SimDuration::from_millis(1));
        let mut b = LatencyStats::new();
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_millis(2));
    }

    #[test]
    fn rates() {
        let mut r = RateCounter::new(SimTime::ZERO);
        r.add(500);
        let now = SimTime::ZERO + SimDuration::from_secs(2);
        assert!((r.rate(now) - 250.0).abs() < 1e-9);
        assert_eq!(r.rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn table_rendering() {
        let mut s1 = Series::new("Slice-1");
        s1.push(1.0, 100.0);
        s1.push(2.0, 190.0);
        let mut s2 = Series::new("Slice-2");
        s2.push(1.0, 100.0);
        let t = render_table("clients", "IOPS", &[s1, s2]);
        assert!(t.contains("Slice-1"));
        assert!(t.contains("190.00"));
        assert!(t.lines().count() == 3);
    }
}
