//! Byte-budget LRU cache bookkeeping.
//!
//! Servers in the ensemble (storage nodes, small-file servers, the µproxy's
//! attribute cache) are memory-limited; SPECsfs latency behaviour in the
//! paper (Figure 6) hinges on the small-file servers overflowing their 1 GB
//! of cache. This LRU tracks *which* items are resident and charges evictions
//! to the caller; the cached payloads themselves live with the owning actor.

use crate::fxmap::FxHashMap;
use std::collections::BTreeMap;
use std::hash::Hash;

/// An LRU set with a byte capacity.
#[derive(Debug, Clone)]
pub struct LruCache<K: Eq + Hash + Clone> {
    capacity: u64,
    used: u64,
    seq: u64,
    /// key -> (lru sequence, size)
    map: FxHashMap<K, (u64, u64)>,
    /// lru sequence -> key
    order: BTreeMap<u64, K>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates a cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            seq: 0,
            map: FxHashMap::default(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Bytes currently accounted resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: &K) {
        if let Some((old_seq, size)) = self.map.get(key).copied() {
            self.order.remove(&old_seq);
            let s = self.seq;
            self.seq += 1;
            self.order.insert(s, key.clone());
            self.map.insert(key.clone(), (s, size));
        }
    }

    /// Looks up `key`, refreshing recency; records a hit or miss.
    pub fn get(&mut self, key: &K) -> bool {
        if self.map.contains_key(key) {
            self.hits += 1;
            self.touch(key);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks residency without recency or statistics side effects.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts (or resizes) `key` at `size` bytes, returning the keys
    /// evicted to make room. An entry larger than the whole capacity is
    /// admitted alone (matching a buffer cache that must stage the block).
    pub fn insert(&mut self, key: K, size: u64) -> Vec<K> {
        if let Some((old_seq, old_size)) = self.map.remove(&key) {
            self.order.remove(&old_seq);
            self.used -= old_size;
        }
        let s = self.seq;
        self.seq += 1;
        self.order.insert(s, key.clone());
        self.map.insert(key, (s, size));
        self.used += size;
        let mut evicted = Vec::new();
        while self.used > self.capacity && self.map.len() > 1 {
            let (&victim_seq, _) = self.order.iter().next().expect("nonempty");
            let victim = self.order.remove(&victim_seq).expect("victim key");
            let (_, vsize) = self.map.remove(&victim).expect("victim entry");
            self.used -= vsize;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Removes `key` if resident; returns its size.
    pub fn remove(&mut self, key: &K) -> Option<u64> {
        let (seq, size) = self.map.remove(key)?;
        self.order.remove(&seq);
        self.used -= size;
        Some(size)
    }

    /// (hits, misses, evictions) since creation.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hit ratio in [0, 1]; zero before any lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(100);
        assert!(!c.get(&1));
        c.insert(1, 10);
        assert!(c.get(&1));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recent_first() {
        let mut c = LruCache::new(30);
        c.insert("a", 10);
        c.insert("b", 10);
        c.insert("c", 10);
        assert!(c.get(&"a")); // refresh a; b is now coldest
        let evicted = c.insert("d", 10);
        assert_eq!(evicted, vec!["b"]);
        assert!(c.contains(&"a") && c.contains(&"c") && c.contains(&"d"));
    }

    #[test]
    fn resize_updates_accounting() {
        let mut c = LruCache::new(100);
        c.insert(1, 40);
        c.insert(1, 70);
        assert_eq!(c.used(), 70);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entry_admitted_alone() {
        let mut c = LruCache::new(10);
        c.insert(1, 5);
        let evicted = c.insert(2, 50);
        assert_eq!(evicted, vec![1]);
        assert!(c.contains(&2));
        assert_eq!(c.used(), 50);
    }

    #[test]
    fn remove_frees_budget() {
        let mut c = LruCache::new(20);
        c.insert(1, 15);
        assert_eq!(c.remove(&1), Some(15));
        assert_eq!(c.used(), 0);
        assert_eq!(c.remove(&1), None);
        assert!(c.insert(2, 20).is_empty());
    }

    #[test]
    fn many_insertions_stay_within_budget() {
        let mut c = LruCache::new(1000);
        for i in 0..10_000u64 {
            c.insert(i, 7);
        }
        assert!(c.used() <= 1000);
        let (_, _, ev) = c.stats();
        assert!(ev > 9_000);
    }
}
