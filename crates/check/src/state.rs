//! Structural oracles over a quiesced ensemble's final state, and the
//! namespace snapshot used for WAL-replay equivalence.
//!
//! These checks run after `run_to_completion` has drained the event
//! queue — several of them (dirty attr-cache entries, open intents) are
//! only invariants *at quiescence*.

use slice_sim::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

use slice_core::actors::{CoordActor, DirActor, StorageActor};
use slice_core::ensemble::SliceEnsemble;
use slice_core::ClientActor;
use slice_dirsvc::{AttrCell, ChildRef, NameCell};
use slice_ec::{k_subsets, Codec, CodedLayout};
use slice_hashes::name_fingerprint;
use slice_nfsproto::{Fhandle, FileType};
use slice_storage::Placement;

use crate::Violation;

/// Runs every structural oracle: directory-service integrity, coordinator
/// block maps (site validity), attr-cache audit, and mirror convergence.
pub fn check_structural(ens: &SliceEnsemble) -> Vec<Violation> {
    let mut v = check_dirsvc(ens);
    v.extend(check_block_maps(ens, false));
    v.extend(check_attr_cache(ens));
    v.extend(check_mirror_convergence(ens));
    v.extend(check_coded_reconstruction(ens));
    v
}

/// Like [`check_structural`] but additionally requires every coordinator
/// block map to be backed by storage objects. Only sound on crash-free
/// runs: a crash between map assignment and the first write legitimately
/// leaves a map without an object.
pub fn check_structural_strict(ens: &SliceEnsemble) -> Vec<Violation> {
    let mut v = check_dirsvc(ens);
    v.extend(check_block_maps(ens, true));
    v.extend(check_attr_cache(ens));
    v.extend(check_mirror_convergence(ens));
    v.extend(check_coded_reconstruction(ens));
    v
}

/// Mirror-convergence oracle (slice-ha): at quiescence every mirrored
/// (file, chunk) must hold byte-identical data on all of its replica
/// sites, and the coordinators' dirty-region logs must have drained.
/// Degraded writes are acceptable only while resynchronization is still
/// owed — never at a quiet fixpoint once every node has recovered.
pub fn check_mirror_convergence(ens: &SliceEnsemble) -> Vec<Violation> {
    let mut v = Vec::new();
    for (ci, &c) in ens.coords.iter().enumerate() {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        for (site, obj, offset, len) in coord.dirty_log_dump() {
            v.push(Violation::new(
                "mirror_dirty_log",
                format!(
                    "coord {ci}: site {site} still owes resync of file {obj} [{offset}, +{len}) at quiescence"
                ),
            ));
        }
    }
    // A client-visible op failure (RPC timeout) leaves a mirrored write
    // partially applied with no promise about either copy; byte-compare
    // is only sound on runs where every op eventually completed.
    let any_timeouts = ens
        .clients
        .iter()
        .any(|&c| ens.engine.actor::<ClientActor>(c).stats().timeouts > 0);
    if any_timeouts {
        return v;
    }
    let n = ens.storage.len() as u64;
    let Some(proxy) = ens
        .clients
        .first()
        .and_then(|&c| ens.engine.actor::<ClientActor>(c).proxy())
    else {
        return v;
    };
    let stripe_unit = proxy.config().stripe_unit.max(1);
    let copies = u64::from(proxy.config().mirror_copies).clamp(1, n);
    let start = if ens.sfs.is_empty() {
        0
    } else {
        slice_smallfile::SF_THRESHOLD
    };
    // Dynamic placements override the static striping function. Coded
    // files hold parity, not replicas — byte-compare does not apply to
    // them (the coded-reconstruction oracle covers them instead).
    let mut mapped: FxHashMap<(u64, u64), Vec<u32>> = FxHashMap::default();
    let mut coded_files: FxHashSet<u64> = FxHashSet::default();
    for &c in &ens.coords {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        for (file, placement, blocks) in coord.block_map_dump() {
            if matches!(placement, Placement::Coded { .. }) {
                coded_files.insert(file);
                continue;
            }
            for (block, sites) in blocks {
                mapped.insert((file, block), sites);
            }
        }
    }
    let (names, attrs) = dir_dumps(ens);
    let mut size_of: FxHashMap<u64, u64> = FxHashMap::default();
    for (_, file, cell) in attrs {
        size_of.insert(file, cell.attr.size);
    }
    let mut mirrored: Vec<u64> = Vec::new();
    let mut seen = FxHashSet::default();
    for (_, _, cell) in &names {
        let fh = cell.child.fhandle();
        if fh.is_mirrored()
            && !fh.is_dir()
            && !fh.is_symlink()
            && !coded_files.contains(&cell.child.file)
            && seen.insert(cell.child.file)
        {
            mirrored.push(cell.child.file);
        }
    }
    mirrored.sort_unstable();
    let read_at = |site: u32, file: u64, offset: u64, len: usize| -> Vec<u8> {
        let node = &ens
            .engine
            .actor::<StorageActor>(ens.storage[site as usize])
            .node;
        match node.store().get(file) {
            Some(obj) => obj.read(offset, len),
            None => vec![0u8; len],
        }
    };
    for file in mirrored {
        let size = size_of.get(&file).copied().unwrap_or(0);
        let mut offset = start;
        while offset < size {
            let len = stripe_unit.min(size - offset) as usize;
            let block = offset / stripe_unit;
            let sites = mapped.get(&(file, block)).cloned().unwrap_or_else(|| {
                let base = slice_hashes::fnv1a(&file.to_le_bytes()) % n;
                let first = (base + block % n) % n;
                (0..copies).map(|c| ((first + c) % n) as u32).collect()
            });
            let reference = read_at(sites[0], file, offset, len);
            for &s in &sites[1..] {
                let other = read_at(s, file, offset, len);
                if other != reference {
                    let diverge = reference
                        .iter()
                        .zip(&other)
                        .position(|(a, b)| a != b)
                        .unwrap_or(reference.len().min(other.len()));
                    v.push(Violation::new(
                        "mirror_convergence",
                        format!(
                            "file {file} chunk [{offset}, +{len}): sites {} and {s} diverge at byte {}",
                            sites[0],
                            offset + diverge as u64
                        ),
                    ));
                    break; // one violation per chunk is plenty
                }
            }
            offset += len as u64;
        }
    }
    v
}

/// `(site, key, cell)` rows collected from every directory server.
type SitedCells<C> = Vec<(usize, u64, C)>;

fn dir_dumps(ens: &SliceEnsemble) -> (SitedCells<NameCell>, SitedCells<AttrCell>) {
    let mut names = Vec::new();
    let mut attrs = Vec::new();
    for (i, &d) in ens.dirs.iter().enumerate() {
        let srv = &ens.engine.actor::<DirActor>(d).server;
        for (key, cell) in srv.dump_name_cells() {
            names.push((i, key, cell));
        }
        for (file, cell) in srv.dump_attr_cells() {
            attrs.push((i, file, cell));
        }
    }
    (names, attrs)
}

/// Directory-service invariants: unique attribute cells, hash-chain
/// integrity of name-cell keys, no orphans, link counts, and per-directory
/// entry counts (paper §4.3: sites cooperate "to update link counts ...
/// and to follow cross-site links").
pub fn check_dirsvc(ens: &SliceEnsemble) -> Vec<Violation> {
    let mut v = Vec::new();
    let (names, attrs) = dir_dumps(ens);
    let root_file = Fhandle::root().file_id();

    // One authoritative attribute cell per file, across all sites.
    let mut attr_map: FxHashMap<u64, (usize, AttrCell)> = FxHashMap::default();
    for (site, file, cell) in &attrs {
        if let Some((other, _)) = attr_map.get(file) {
            v.push(Violation::new(
                "dirsvc_attr_unique",
                format!("file {file} has attribute cells at sites {other} and {site}"),
            ));
        } else {
            attr_map.insert(*file, (*site, cell.clone()));
        }
    }

    // ChildRefs referencing the same file must agree on home and key
    // (they mint the same handle bytes modulo flags/generation).
    let mut child_of: FxHashMap<u64, ChildRef> = FxHashMap::default();
    for (_, _, cell) in &names {
        let c = cell.child;
        match child_of.get(&c.file) {
            Some(prev) if (prev.home, prev.key) != (c.home, c.key) => {
                v.push(Violation::new(
                    "dirsvc_childref",
                    format!(
                        "file {} referenced with (home {}, key {:#x}) and (home {}, key {:#x})",
                        c.file, prev.home, prev.key, c.home, c.key
                    ),
                ));
            }
            Some(_) => {}
            None => {
                child_of.insert(c.file, c);
            }
        }
    }

    // Hash chain: every name cell's map key must equal the fingerprint of
    // (parent handle bytes, name) — the same computation the µproxy's
    // request router performs, so a broken chain means unroutable names.
    for (site, key, cell) in &names {
        let parent_fh = if cell.parent == root_file {
            Fhandle::root()
        } else if let Some(cr) = child_of.get(&cell.parent) {
            cr.fhandle()
        } else {
            v.push(Violation::new(
                "dirsvc_orphan",
                format!(
                    "site {site}: entry '{}' has parent {} with no name cell anywhere",
                    cell.name, cell.parent
                ),
            ));
            continue;
        };
        let want = name_fingerprint(&parent_fh.0, cell.name.as_bytes());
        if want != *key {
            v.push(Violation::new(
                "dirsvc_hash_chain",
                format!(
                    "site {site}: entry '{}' under {} stored at key {key:#x}, fingerprint {want:#x}",
                    cell.name, cell.parent
                ),
            ));
        }
        if let Some((_, pa)) = attr_map.get(&cell.parent) {
            if pa.attr.ftype != FileType::Directory {
                v.push(Violation::new(
                    "dirsvc_parent_type",
                    format!(
                        "entry '{}' has non-directory parent {}",
                        cell.name, cell.parent
                    ),
                ));
            }
        }
        if !attr_map.contains_key(&cell.child.file) {
            v.push(Violation::new(
                "dirsvc_missing_attr",
                format!(
                    "entry '{}' references file {} with no attribute cell anywhere",
                    cell.name, cell.child.file
                ),
            ));
        }
    }

    // Link counts and entry counts against the actual name cells.
    let mut refcount: FxHashMap<u64, u32> = FxHashMap::default();
    let mut entries: FxHashMap<u64, u32> = FxHashMap::default();
    for (_, _, cell) in &names {
        *refcount.entry(cell.child.file).or_insert(0) += 1;
        *entries.entry(cell.parent).or_insert(0) += 1;
    }
    for (file, (site, cell)) in &attr_map {
        match cell.attr.ftype {
            FileType::Directory => {
                let have = entries.get(file).copied().unwrap_or(0);
                if cell.entry_count != have {
                    v.push(Violation::new(
                        "dirsvc_entry_count",
                        format!(
                            "directory {file} (site {site}) records {} entries, {} name cells exist",
                            cell.entry_count, have
                        ),
                    ));
                }
            }
            FileType::Regular | FileType::Symlink => {
                let have = refcount.get(file).copied().unwrap_or(0);
                if cell.attr.nlink != have {
                    v.push(Violation::new(
                        "dirsvc_nlink",
                        format!(
                            "file {file} (site {site}) has nlink {}, {} referencing name cells",
                            cell.attr.nlink, have
                        ),
                    ));
                }
            }
        }
    }

    v
}

/// Coordinator block maps: replica site lists must be valid (in range,
/// non-empty, distinct). With `strict`, every map for a file whose
/// authoritative size reaches into the striped region must be backed by a
/// storage object, and every block of a mirrored placement must hold
/// byte-identical data on every listed site — compared block by block,
/// because `MapGet` assigns whole 16-block fragments eagerly, so a
/// sparsely written file legitimately maps never-written blocks (which
/// read as zeros everywhere). Files at or below the small-file threshold
/// live entirely on the small-file servers, so a map assigned for them
/// (e.g. by a truncate routed through the bulk path) legitimately has no
/// object.
pub fn check_block_maps(ens: &SliceEnsemble, strict: bool) -> Vec<Violation> {
    let mut v = Vec::new();
    let sites = ens.storage.len() as u32;
    let holds = |site: u32, file: u64| -> bool {
        let node = &ens
            .engine
            .actor::<StorageActor>(ens.storage[site as usize])
            .node;
        node.store().get(file).is_some()
    };
    let read_block = |site: u32, file: u64, offset: u64, len: u64| -> Option<Vec<u8>> {
        let node = &ens
            .engine
            .actor::<StorageActor>(ens.storage[site as usize])
            .node;
        if !node.store().retains_data() {
            return None;
        }
        Some(
            node.store()
                .get(file)
                .map(|o| o.read(offset, len as usize))
                .unwrap_or_else(|| vec![0u8; len as usize]),
        )
    };
    let mut authoritative_size: FxHashMap<u64, u64> = FxHashMap::default();
    for (_, file, cell) in dir_dumps(ens).1 {
        authoritative_size.insert(file, cell.attr.size);
    }
    for (ci, &c) in ens.coords.iter().enumerate() {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        let unit = coord.stripe_unit();
        for (file, placement, blocks) in coord.block_map_dump() {
            let expect_backing = authoritative_size
                .get(&file)
                .is_some_and(|&sz| sz > slice_smallfile::SF_THRESHOLD);
            let mut any_backed = false;
            for (block, replica_sites) in &blocks {
                if replica_sites.is_empty() {
                    v.push(Violation::new(
                        "block_map_sites",
                        format!("coord {ci}: file {file} block {block} has no replica sites"),
                    ));
                    continue;
                }
                if let Placement::Coded { n, .. } = placement {
                    if replica_sites.len() != n as usize {
                        v.push(Violation::new(
                            "block_map_sites",
                            format!(
                                "coord {ci}: file {file} block {block} coded n={n} but lists {} sites",
                                replica_sites.len()
                            ),
                        ));
                    }
                }
                let mut seen = FxHashSet::default();
                for &s in replica_sites {
                    if s >= sites {
                        v.push(Violation::new(
                            "block_map_sites",
                            format!(
                                "coord {ci}: file {file} block {block} lists site {s} of {sites}"
                            ),
                        ));
                    } else if !seen.insert(s) {
                        v.push(Violation::new(
                            "block_map_sites",
                            format!("coord {ci}: file {file} block {block} lists site {s} twice"),
                        ));
                    } else if holds(s, file) {
                        any_backed = true;
                    }
                }
                // Mirror byte-compare: at quiescence every listed
                // replica of this block must read back identically (a
                // missing object or a hole reads as zeros, so eagerly
                // assigned never-written blocks pass trivially).
                if strict && expect_backing && matches!(placement, Placement::Mirrored { .. }) {
                    let mut replicas = replica_sites.iter().filter(|&&s| s < sites);
                    if let Some(&first) = replicas.next() {
                        let want = read_block(first, file, block * unit, unit);
                        for &s in replicas {
                            let got = read_block(s, file, block * unit, unit);
                            if let (Some(want), Some(got)) = (&want, &got) {
                                if want != got {
                                    v.push(Violation::new(
                                        "block_map_object",
                                        format!(
                                            "coord {ci}: file {file} block {block} mirrored on \
                                             sites {first} and {s}, but the copies diverge"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            if strict && expect_backing && !blocks.is_empty() && !any_backed {
                v.push(Violation::new(
                    "block_map_object",
                    format!(
                        "coord {ci}: file {file} has a {}-block map but no storage object on any listed site",
                        blocks.len()
                    ),
                ));
            }
        }
    }
    v
}

/// Coded-reconstruction oracle (slice-ec): at quiescence every stripe of
/// every erasure-coded file must satisfy the code — each parity shard
/// equals the Cauchy combination of the k data shards, and every k-subset
/// of the n shards decodes back to the same data — unless the stripe is
/// still covered by an open dirty-region entry (resync owed; the dirty-log
/// oracle reports that separately). Holes read as zeros, which the linear
/// code encodes to zero parity, so sparse stripes need no special-casing.
/// Like the mirror byte-compare, this is only sound on runs where every
/// client op eventually completed.
pub fn check_coded_reconstruction(ens: &SliceEnsemble) -> Vec<Violation> {
    let mut v = Vec::new();
    let any_timeouts = ens
        .clients
        .iter()
        .any(|&c| ens.engine.actor::<ClientActor>(c).stats().timeouts > 0);
    if any_timeouts {
        return v;
    }
    let Some(proxy) = ens
        .clients
        .first()
        .and_then(|&c| ens.engine.actor::<ClientActor>(c).proxy())
    else {
        return v;
    };
    let stripe_unit = proxy.config().stripe_unit.max(1);
    // Open dirty ranges excuse a stripe: a leg parked there has not been
    // resynced yet, so its shards are legitimately stale.
    let mut dirty: FxHashMap<u64, Vec<(u64, u64)>> = FxHashMap::default();
    for &c in &ens.coords {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        for (_site, obj, offset, len) in coord.dirty_log_dump() {
            dirty.entry(obj).or_default().push((offset, len));
        }
    }
    let read_at = |site: u32, file: u64, offset: u64, len: usize| -> Vec<u8> {
        let node = &ens
            .engine
            .actor::<StorageActor>(ens.storage[site as usize])
            .node;
        match node.store().get(file) {
            Some(obj) => obj.read(offset, len),
            None => vec![0u8; len],
        }
    };
    for (ci, &c) in ens.coords.iter().enumerate() {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        for (file, placement, blocks) in coord.block_map_dump() {
            let Placement::Coded { n, k } = placement else {
                continue;
            };
            let layout = CodedLayout::new(n, k, stripe_unit);
            let codec = Codec::new(n as usize, k as usize);
            let ssize = layout.shard_size() as usize;
            for (s, sites) in blocks {
                if sites.len() != n as usize {
                    continue; // reported by check_block_maps
                }
                let excused = dirty.get(&file).is_some_and(|ranges| {
                    ranges
                        .iter()
                        .any(|&(o, l)| o < (s + 1) * stripe_unit && o + l > s * stripe_unit)
                });
                if excused {
                    continue;
                }
                let shards: Vec<Vec<u8>> = (0..n)
                    .map(|idx| {
                        read_at(
                            sites[idx as usize],
                            file,
                            layout.shard_obj_offset(s, idx, 0),
                            ssize,
                        )
                    })
                    .collect();
                let data: Vec<&[u8]> = shards[..k as usize].iter().map(Vec::as_slice).collect();
                let mut stripe_ok = true;
                for p in 0..(n - k) as usize {
                    if codec.parity_row(p, &data) != shards[k as usize + p] {
                        v.push(Violation::new(
                            "coded_parity",
                            format!(
                                "coord {ci}: file {file} stripe {s}: parity shard {p} on site {} inconsistent with data",
                                sites[k as usize + p]
                            ),
                        ));
                        stripe_ok = false;
                    }
                }
                if !stripe_ok {
                    continue; // k-subset decodes would all re-report the same corruption
                }
                for subset in k_subsets(n as usize, k as usize) {
                    let mut present: Vec<Option<&[u8]>> = vec![None; n as usize];
                    for &i in &subset {
                        present[i] = Some(&shards[i]);
                    }
                    let decoded = codec.decode(&present);
                    if decoded.as_deref() != Some(&shards[..k as usize]) {
                        v.push(Violation::new(
                            "coded_decode",
                            format!(
                                "coord {ci}: file {file} stripe {s}: k-subset {subset:?} fails to reconstruct the data shards"
                            ),
                        ));
                        break; // one violation per stripe is plenty
                    }
                }
            }
        }
    }
    v
}

/// Drain oracle (online reconfiguration): after a planned removal, the
/// drained sites must be fully evacuated — no chunk stranded, no map
/// entry orphaned. Concretely, for every site in `sites`:
/// every coordinator reports it retired; no block-map entry or durable
/// pin references it; its storage node holds no object that any block
/// map still names (bytes were migrated, then removed); the
/// coordinator's dirty-region/migration soft state for it has been
/// purged; and no µproxy still suspects it (retirement purges the
/// suspicion table, closing the O(ever-seen) soft-state leak).
pub fn check_drained(ens: &SliceEnsemble, sites: &[usize]) -> Vec<Violation> {
    let mut v = Vec::new();
    // Which objects does any coordinator still map (to any site)?
    let mut mapped_objs: FxHashSet<u64> = FxHashSet::default();
    for &c in &ens.coords {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        for (file, _, _) in coord.block_map_dump() {
            mapped_objs.insert(file);
        }
    }
    for &site in sites {
        let s32 = site as u32;
        for (ci, &c) in ens.coords.iter().enumerate() {
            let coord = &ens.engine.actor::<CoordActor>(c).coord;
            if !coord.is_retired(s32) {
                v.push(Violation::new(
                    "drain_incomplete",
                    format!("coord {ci}: site {site} not retired at quiescence"),
                ));
            }
            for (file, _, blocks) in coord.block_map_dump() {
                for (block, replica_sites) in blocks {
                    if replica_sites.contains(&s32) {
                        v.push(Violation::new(
                            "drain_orphan_map",
                            format!(
                                "coord {ci}: file {file} block {block} still maps retired site {site}"
                            ),
                        ));
                    }
                }
            }
            for (file, block, pinned) in coord.pinned_entries_dump() {
                if pinned.contains(&s32) {
                    v.push(Violation::new(
                        "drain_orphan_pin",
                        format!(
                            "coord {ci}: file {file} block {block} pin still names retired site {site}"
                        ),
                    ));
                }
            }
            for (d_site, obj, offset, len) in coord.dirty_log_dump() {
                if d_site == s32 {
                    v.push(Violation::new(
                        "drain_soft_state",
                        format!(
                            "coord {ci}: dirty-region entry for retired site {site} \
                             (file {obj} [{offset}, +{len})) survived the purge"
                        ),
                    ));
                }
            }
        }
        let node = &ens.engine.actor::<StorageActor>(ens.storage[site]).node;
        for obj in node.store().ids() {
            if mapped_objs.contains(&obj) {
                v.push(Violation::new(
                    "drain_stranded_chunk",
                    format!("retired site {site} still holds mapped object {obj}"),
                ));
            }
        }
        for (i, &c) in ens.clients.iter().enumerate() {
            let Some(proxy) = ens.engine.actor::<ClientActor>(c).proxy() else {
                continue;
            };
            if proxy.suspected_sites().contains(&s32) {
                v.push(Violation::new(
                    "drain_soft_state",
                    format!("client {i}: µproxy still suspects retired site {site}"),
                ));
            }
            if !proxy.retired_sites().contains(&s32) {
                v.push(Violation::new(
                    "drain_incomplete",
                    format!("client {i}: µproxy never learned site {site} retired"),
                ));
            }
        }
    }
    v
}

/// Attr-cache audit: at quiescence no cached attribute may still be dirty
/// (every write-back must have been pushed and acknowledged), and — for
/// single-client runs, where no other writer can legitimately outdate the
/// cache — clean cached sizes must be subsumed by the directory service's
/// authoritative attributes.
pub fn check_attr_cache(ens: &SliceEnsemble) -> Vec<Violation> {
    let mut v = Vec::new();
    let (_, attrs) = dir_dumps(ens);
    let mut server_size: FxHashMap<u64, u64> = FxHashMap::default();
    for (_, file, cell) in attrs {
        server_size.insert(file, cell.attr.size);
    }
    let single_client = ens.clients.len() == 1;
    for (i, &c) in ens.clients.iter().enumerate() {
        let client = ens.engine.actor::<ClientActor>(c);
        let Some(proxy) = client.proxy() else {
            continue;
        };
        for (file, dirty, size) in proxy.audit_attr_cache() {
            if dirty {
                v.push(Violation::new(
                    "attr_cache_dirty",
                    format!("client {i}: file {file} still dirty at quiescence"),
                ));
            } else if single_client {
                if let Some(&srv) = server_size.get(&file) {
                    if srv < size {
                        v.push(Violation::new(
                            "attr_cache_subsumed",
                            format!(
                                "client {i}: file {file} cached size {size}, server holds {srv}"
                            ),
                        ));
                    }
                }
            }
        }
    }
    v
}

/// One namespace entry in a [`VolumeSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapEntry {
    /// `"file"`, `"dir"`, or `"symlink"`.
    pub kind: &'static str,
    /// Size in bytes per the authoritative attribute cell.
    pub size: u64,
    /// Link count per the authoritative attribute cell.
    pub nlink: u32,
}

/// A path-keyed snapshot of the whole distributed namespace, assembled by
/// walking name cells from the root across every directory site. Two runs
/// that performed the same client-visible operations must produce equal
/// snapshots — the WAL-replay equivalence oracle compares a post-crash
/// recovered run against a crash-free reference run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VolumeSnapshot {
    /// Entries by absolute path.
    pub entries: BTreeMap<String, SnapEntry>,
}

/// Builds the namespace snapshot of a quiesced ensemble.
pub fn snapshot(ens: &SliceEnsemble) -> VolumeSnapshot {
    let (names, attrs) = dir_dumps(ens);
    let mut attr_map: FxHashMap<u64, AttrCell> = FxHashMap::default();
    for (_, file, cell) in attrs {
        attr_map.entry(file).or_insert(cell);
    }
    let mut children: FxHashMap<u64, Vec<(String, ChildRef)>> = FxHashMap::default();
    for (_, _, cell) in names {
        children
            .entry(cell.parent)
            .or_default()
            .push((cell.name, cell.child));
    }

    let mut snap = VolumeSnapshot::default();
    let root = Fhandle::root().file_id();
    let mut queue: Vec<(u64, String)> = vec![(root, String::new())];
    let mut visited = FxHashSet::default();
    while let Some((dir, prefix)) = queue.pop() {
        if !visited.insert(dir) {
            continue; // corrupt cycle: the dirsvc oracles will report it
        }
        let Some(kids) = children.get(&dir) else {
            continue;
        };
        for (name, child) in kids {
            let path = format!("{prefix}/{name}");
            let (kind, size, nlink) = match attr_map.get(&child.file) {
                Some(cell) => (
                    match cell.attr.ftype {
                        FileType::Directory => "dir",
                        FileType::Regular => "file",
                        FileType::Symlink => "symlink",
                    },
                    cell.attr.size,
                    cell.attr.nlink,
                ),
                None => ("file", 0, 0),
            };
            if kind == "dir" {
                queue.push((child.file, path.clone()));
            }
            snap.entries.insert(path, SnapEntry { kind, size, nlink });
        }
    }
    snap
}

/// Describes every difference between two snapshots (empty = equivalent).
pub fn snapshot_diff(a: &VolumeSnapshot, b: &VolumeSnapshot) -> Vec<String> {
    let mut out = Vec::new();
    for (path, ea) in &a.entries {
        match b.entries.get(path) {
            None => out.push(format!("{path}: present in A only ({ea:?})")),
            Some(eb) if ea != eb => out.push(format!("{path}: {ea:?} vs {eb:?}")),
            Some(_) => {}
        }
    }
    for (path, eb) in &b.entries {
        if !a.entries.contains_key(path) {
            out.push(format!("{path}: present in B only ({eb:?})"));
        }
    }
    out
}
