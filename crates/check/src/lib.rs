//! Consistency oracles and deterministic crash-schedule exploration for
//! the Slice reproduction.
//!
//! The paper's central correctness claims — that interposed request
//! routing keeps the ensemble "equivalent to a monolithic NFS server"
//! and that write-ahead intention logging makes multisite operations
//! atomic across crashes (§3.3–§3.4) — are mechanical properties of the
//! deterministic simulation. This crate checks them mechanically, in
//! three layers:
//!
//! * **recorder** — `slice-core` captures a begin/end invocation record
//!   for every client-visible NFS call (`slice_core::history`, enabled by
//!   `SliceConfig::record_history`);
//! * **oracles** — [`oracle`] replays recorded histories against a
//!   per-chunk register model (bounded Wing & Gong linearizability plus a
//!   close-to-open fast path), and [`state`] checks structural invariants
//!   of the final ensemble state: directory hash-chain integrity and link
//!   counts, coordinator block maps vs. storage objects, attr-cache
//!   subsumption, and namespace equivalence against a crash-free
//!   reference run (the WAL-replay oracle);
//! * **explorer** — [`explore`] generates deterministic workloads and
//!   crash/recover/packet-loss schedules from a seed, runs every oracle
//!   after each schedule, and minimizes failing schedules by bisection.
//!
//! Everything here is deterministic: the same seed produces byte-identical
//! reports, so a failing schedule is a reproducible artifact, not a flake.

pub mod explore;
pub mod oracle;
pub mod state;

pub use explore::{
    chaos_schedules, coded_chaos_schedules, generate_scenario, minimize, minimize_with_threads,
    reconf_schedules, run_schedule, run_schedule_coded, run_schedule_reconf, run_schedule_sharded,
    standard_schedules, sweep, sweep_coded, sweep_reconf, sweep_sharded, sweep_with,
    sweep_with_threads, DriverWorkload, GenOp, Injection, RunOutcome, Scenario, Schedule,
    ScheduleEvent, SweepFailure, SweepReport,
};
pub use oracle::{check_histories, OracleStats};
pub use state::{
    check_coded_reconstruction, check_drained, check_structural, check_structural_strict, snapshot,
    snapshot_diff, SnapEntry, VolumeSnapshot,
};

/// One oracle violation: which oracle fired and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable oracle name (`linearizability`, `dirsvc_hash_chain`, ...).
    pub oracle: &'static str,
    /// What exactly was inconsistent.
    pub detail: String,
}

impl Violation {
    /// Builds a violation.
    pub fn new(oracle: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            oracle,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}
