//! History oracles: per-file linearizability of read/write/truncate over
//! a chunk-register model, with an NFS-aware notion of which operations
//! *must* have taken effect.
//!
//! Every recorded operation is projected onto the 1 KiB chunks it fully
//! covers (see `slice_core::history::CHUNK_BYTES`). Each `(file, chunk)`
//! pair becomes an independent atomic register with initial value 0
//! (NFS holes read as zeroes), and the recorded operations become register
//! reads and writes:
//!
//! * a **required** write is one that completed `NFS3_OK` with stability
//!   `DATA_SYNC`/`FILE_SYNC` — the server promised durability, so the
//!   write must be linearizable;
//! * an **optional** write either never completed (the effect may or may
//!   not have landed before the client gave up), completed with an error,
//!   or was `UNSTABLE` (V3 permits losing it in a crash before COMMIT);
//! * a completed `NFS3_OK` truncate to size `s` is a required write of 0
//!   to every chunk at or above `ceil(s / CHUNK)` that the history ever
//!   touched;
//! * a completed `NFS3_OK` read of a fully covered, uniform-valued chunk
//!   asserts the register held that value at some instant inside the
//!   read's begin/end window.
//!
//! Registers whose operations are totally ordered in real time take a
//! linear-time sequential pass (which doubles as the close-to-open
//! oracle); registers with genuine concurrency get a bounded Wing & Gong
//! search. Registers exceeding the search bounds are *skipped and
//! counted*, never silently dropped: [`OracleStats::registers_skipped`]
//! reports them so a sweep can't claim coverage it didn't have.

use slice_sim::{FxHashMap, FxHashSet};

use slice_core::history::{OpHistory, OpRecord, CHUNK_BYTES};
use slice_nfsproto::{NfsStatus, StableHow};

use crate::Violation;

/// Search bounds for the concurrent register checker.
const MAX_REGISTER_OPS: usize = 24;
const MAX_OPTIONAL_WRITES: usize = 6;
const MAX_SEARCH_STATES: usize = 100_000;

/// Counters describing how much the history oracles actually covered.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OracleStats {
    /// Recorded operations considered.
    pub ops_considered: u64,
    /// `(file, chunk)` registers fully checked.
    pub registers_checked: u64,
    /// Registers skipped because they exceeded the search bounds.
    pub registers_skipped: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegKind {
    /// A write of a uniform byte; `None` = mixed (unknown) bytes.
    Write(Option<u8>),
    /// A read that observed a uniform byte.
    Read(u8),
}

#[derive(Debug, Clone, Copy)]
struct RegOp {
    begin: u64,
    /// `None` = never completed; the effect window extends forever.
    end: Option<u64>,
    kind: RegKind,
    /// Required ops must linearize; optional ops may be dropped.
    required: bool,
}

/// A set of possible register values: a 256-bit set plus a wildcard flag
/// for "some unknown byte was written".
#[derive(Debug, Clone, Copy)]
struct ValSet {
    bits: [u64; 4],
    wildcard: bool,
}

impl ValSet {
    fn single(v: u8) -> Self {
        let mut s = ValSet {
            bits: [0; 4],
            wildcard: false,
        };
        s.insert(v);
        s
    }

    fn insert(&mut self, v: u8) {
        self.bits[(v >> 6) as usize] |= 1 << (v & 63);
    }

    fn contains(&self, v: u8) -> bool {
        self.wildcard || self.bits[(v >> 6) as usize] & (1 << (v & 63)) != 0
    }
}

/// Runs every history oracle over the merged per-client histories.
pub fn check_histories(histories: &[&OpHistory]) -> (Vec<Violation>, OracleStats) {
    let mut violations = Vec::new();
    let mut stats = OracleStats::default();

    // Hard-status oracle: these statuses mean the ensemble itself failed,
    // regardless of what the data oracles can prove.
    for h in histories {
        for rec in h.records() {
            stats.ops_considered += 1;
            if let Some(st) = rec.status {
                if matches!(
                    st,
                    NfsStatus::Io | NfsStatus::ServerFault | NfsStatus::NotSupp
                ) {
                    violations.push(Violation::new(
                        "hard_status",
                        format!("{} xid={} returned {:?}", rec.op, rec.xid, st),
                    ));
                }
            }
        }
    }

    // Project the histories onto chunk registers. Sort by (file, chunk)
    // so violation order — and therefore checker output — is
    // deterministic regardless of hash-map iteration order.
    let mut registers: Vec<_> = build_registers(histories).into_iter().collect();
    registers.sort_by_key(|(key, _)| *key);
    for ((file, chunk), ops) in registers {
        match check_register(file, chunk, &ops) {
            RegisterVerdict::Ok => stats.registers_checked += 1,
            RegisterVerdict::Skipped => stats.registers_skipped += 1,
            RegisterVerdict::Violation(v) => {
                stats.registers_checked += 1;
                violations.push(v);
            }
        }
    }

    (violations, stats)
}

fn build_registers(histories: &[&OpHistory]) -> FxHashMap<(u64, u64), Vec<RegOp>> {
    let mut regs: FxHashMap<(u64, u64), Vec<RegOp>> = FxHashMap::default();
    // Highest chunk index each file's history ever touched, so truncates
    // know how far to project their zeroing.
    let mut max_chunk: FxHashMap<u64, u64> = FxHashMap::default();

    let completed_ok = |r: &OpRecord| r.end.is_some() && r.status == Some(NfsStatus::Ok);

    for h in histories {
        for rec in h.records() {
            match rec.op {
                "write" => {
                    let required = completed_ok(rec) && rec.stable != Some(StableHow::Unstable);
                    for (i, v) in rec.wrote.iter().enumerate() {
                        let chunk = rec.chunk0 + i as u64;
                        let top = max_chunk.entry(rec.file).or_insert(0);
                        *top = (*top).max(chunk);
                        regs.entry((rec.file, chunk)).or_default().push(RegOp {
                            begin: rec.begin.as_nanos(),
                            end: rec.end.map(|t| t.as_nanos()),
                            kind: RegKind::Write(*v),
                            required,
                        });
                    }
                }
                "read" if completed_ok(rec) => {
                    for (i, v) in rec.read.iter().enumerate() {
                        let Some(v) = v else { continue };
                        let chunk = rec.chunk0 + i as u64;
                        let top = max_chunk.entry(rec.file).or_insert(0);
                        *top = (*top).max(chunk);
                        regs.entry((rec.file, chunk)).or_default().push(RegOp {
                            begin: rec.begin.as_nanos(),
                            end: rec.end.map(|t| t.as_nanos()),
                            kind: RegKind::Read(*v),
                            required: true,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // Second pass: truncates zero every touched chunk at or above the new
    // size (shrink discards data; re-extension exposes holes that read 0).
    for h in histories {
        for rec in h.records() {
            let Some(s) = rec.truncate_to else { continue };
            if rec.op != "setattr" {
                continue;
            }
            let required = completed_ok(rec);
            if rec.end.is_none() || required {
                let first = s.div_ceil(CHUNK_BYTES);
                let top = max_chunk.get(&rec.file).copied().unwrap_or(0);
                for chunk in first..=top {
                    regs.entry((rec.file, chunk)).or_default().push(RegOp {
                        begin: rec.begin.as_nanos(),
                        end: rec.end.map(|t| t.as_nanos()),
                        kind: RegKind::Write(Some(0)),
                        required,
                    });
                }
            }
        }
    }

    regs
}

enum RegisterVerdict {
    Ok,
    Skipped,
    Violation(Violation),
}

fn check_register(file: u64, chunk: u64, ops: &[RegOp]) -> RegisterVerdict {
    if !ops.iter().any(|o| matches!(o.kind, RegKind::Read(_))) {
        return RegisterVerdict::Ok; // nothing observable to contradict
    }
    let mut sorted: Vec<RegOp> = ops.to_vec();
    sorted.sort_by_key(|o| (o.begin, o.end.unwrap_or(u64::MAX)));

    // Sequential fast path: no two effect windows overlap.
    let mut sequential = true;
    for w in sorted.windows(2) {
        match w[0].end {
            Some(e) if e <= w[1].begin => {}
            _ => {
                sequential = false;
                break;
            }
        }
    }
    if sequential {
        return check_sequential(file, chunk, &sorted);
    }
    check_concurrent(file, chunk, &sorted)
}

/// Walks a totally ordered register history tracking the set of values
/// the register could hold. This subsumes NFS close-to-open consistency:
/// a read that begins after a stable write completed must observe it
/// (absent an intervening write).
fn check_sequential(file: u64, chunk: u64, sorted: &[RegOp]) -> RegisterVerdict {
    let mut set = ValSet::single(0);
    // The last write before the current point, for violation tagging.
    let mut last_write: Option<&RegOp> = None;
    for op in sorted {
        match op.kind {
            RegKind::Write(Some(v)) => {
                if op.required {
                    set = ValSet::single(v);
                } else {
                    set.insert(v);
                }
                last_write = Some(op);
            }
            RegKind::Write(None) => {
                set.wildcard = true;
                last_write = Some(op);
            }
            RegKind::Read(v) => {
                if set.contains(v) {
                    set = ValSet::single(v);
                } else {
                    // A stale read directly after a completed stable write
                    // is the classic close-to-open failure; anything else
                    // is a generic linearizability violation.
                    let oracle = match last_write {
                        Some(w) if w.required && w.end.is_some() => "close_to_open",
                        _ => "linearizability",
                    };
                    return RegisterVerdict::Violation(Violation::new(
                        oracle,
                        format!("file {file} chunk {chunk}: read observed {v:#04x}, impossible at that point"),
                    ));
                }
            }
        }
    }
    RegisterVerdict::Ok
}

/// Bounded Wing & Gong search for registers with overlapping operations.
/// Optional writes are pre-branched (each either linearizes or is
/// dropped); required ops must all linearize in some real-time-respecting
/// order.
fn check_concurrent(file: u64, chunk: u64, sorted: &[RegOp]) -> RegisterVerdict {
    if sorted
        .iter()
        .any(|o| matches!(o.kind, RegKind::Write(None)))
    {
        return RegisterVerdict::Skipped; // unknown-value writes: no claim
    }
    let required: Vec<RegOp> = sorted.iter().copied().filter(|o| o.required).collect();
    let optional: Vec<RegOp> = sorted.iter().copied().filter(|o| !o.required).collect();
    if optional.len() > MAX_OPTIONAL_WRITES || required.len() + optional.len() > MAX_REGISTER_OPS {
        return RegisterVerdict::Skipped;
    }
    let mut budget = MAX_SEARCH_STATES;
    for subset in 0..(1u32 << optional.len()) {
        let mut ops = required.clone();
        for (i, o) in optional.iter().enumerate() {
            if subset & (1 << i) != 0 {
                ops.push(*o);
            }
        }
        ops.sort_by_key(|o| (o.begin, o.end.unwrap_or(u64::MAX)));
        let mut visited = FxHashSet::default();
        match linearize(&ops, (1u32 << ops.len()) - 1, 0, &mut visited, &mut budget) {
            SearchResult::Found => return RegisterVerdict::Ok,
            SearchResult::Exhausted => {}
            SearchResult::OutOfBudget => return RegisterVerdict::Skipped,
        }
    }
    RegisterVerdict::Violation(Violation::new(
        "linearizability",
        format!(
            "file {file} chunk {chunk}: no linearization of {} concurrent ops",
            sorted.len()
        ),
    ))
}

enum SearchResult {
    Found,
    Exhausted,
    OutOfBudget,
}

fn linearize(
    ops: &[RegOp],
    remaining: u32,
    value: u8,
    visited: &mut FxHashSet<(u32, u8)>,
    budget: &mut usize,
) -> SearchResult {
    if remaining == 0 {
        return SearchResult::Found;
    }
    if !visited.insert((remaining, value)) {
        return SearchResult::Exhausted;
    }
    if *budget == 0 {
        return SearchResult::OutOfBudget;
    }
    *budget -= 1;
    for i in 0..ops.len() {
        if remaining & (1 << i) == 0 {
            continue;
        }
        // Real-time order: `i` can only go next if no other remaining op
        // finished strictly before `i` began.
        let precluded = (0..ops.len()).any(|j| {
            j != i && remaining & (1 << j) != 0 && matches!(ops[j].end, Some(e) if e < ops[i].begin)
        });
        if precluded {
            continue;
        }
        let next_value = match ops[i].kind {
            RegKind::Write(Some(v)) => v,
            RegKind::Write(None) => unreachable!("filtered before search"),
            RegKind::Read(v) => {
                if v != value {
                    continue;
                }
                value
            }
        };
        match linearize(ops, remaining & !(1 << i), next_value, visited, budget) {
            SearchResult::Found => return SearchResult::Found,
            SearchResult::Exhausted => {}
            SearchResult::OutOfBudget => return SearchResult::OutOfBudget,
        }
    }
    SearchResult::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(begin: u64, end: u64, v: u8, required: bool) -> RegOp {
        RegOp {
            begin,
            end: Some(end),
            kind: RegKind::Write(Some(v)),
            required,
        }
    }

    fn r(begin: u64, end: u64, v: u8) -> RegOp {
        RegOp {
            begin,
            end: Some(end),
            kind: RegKind::Read(v),
            required: true,
        }
    }

    #[test]
    fn sequential_read_after_write_passes() {
        let ops = vec![w(0, 10, 5, true), r(20, 30, 5)];
        assert!(matches!(check_register(1, 0, &ops), RegisterVerdict::Ok));
    }

    #[test]
    fn sequential_stale_read_is_close_to_open() {
        let ops = vec![w(0, 10, 5, true), r(20, 30, 6)];
        match check_register(1, 0, &ops) {
            RegisterVerdict::Violation(v) => assert_eq!(v.oracle, "close_to_open"),
            _ => panic!("expected violation"),
        }
    }

    #[test]
    fn optional_write_may_or_may_not_land() {
        // An unstable write that may have been lost: reading either the
        // old or the new value is fine.
        let old = vec![w(0, 10, 1, true), w(20, 30, 2, false), r(40, 50, 1)];
        let new = vec![w(0, 10, 1, true), w(20, 30, 2, false), r(40, 50, 2)];
        assert!(matches!(check_register(1, 0, &old), RegisterVerdict::Ok));
        assert!(matches!(check_register(1, 0, &new), RegisterVerdict::Ok));
        let neither = vec![w(0, 10, 1, true), w(20, 30, 2, false), r(40, 50, 3)];
        assert!(matches!(
            check_register(1, 0, &neither),
            RegisterVerdict::Violation(_)
        ));
    }

    #[test]
    fn concurrent_overlapping_writes_allow_either_order() {
        // Two overlapping required writes, then a read that could see
        // whichever linearized last.
        for seen in [7u8, 8u8] {
            let ops = vec![w(0, 100, 7, true), w(50, 150, 8, true), r(200, 210, seen)];
            assert!(matches!(check_register(1, 0, &ops), RegisterVerdict::Ok));
        }
        let ops = vec![w(0, 100, 7, true), w(50, 150, 8, true), r(200, 210, 9)];
        assert!(matches!(
            check_register(1, 0, &ops),
            RegisterVerdict::Violation(_)
        ));
    }

    #[test]
    fn concurrent_read_respects_real_time_order() {
        // The write finished before the read began, and no other write
        // exists: the read must see it.
        let ops = vec![
            w(0, 100, 7, true),
            r(50, 150, 7), // overlaps the write: may see 0 or 7? must see 7 or 0
            r(200, 210, 0),
        ];
        // The late read of 0 cannot linearize after the required write.
        assert!(matches!(
            check_register(1, 0, &ops),
            RegisterVerdict::Violation(_)
        ));
    }

    #[test]
    fn incomplete_write_is_optional_and_unordered() {
        // A write with no reply may land at any time — a later read may
        // see either value.
        let dangling = RegOp {
            begin: 20,
            end: None,
            kind: RegKind::Write(Some(9)),
            required: false,
        };
        for seen in [0u8, 9u8] {
            let ops = vec![dangling, r(100, 110, seen)];
            assert!(matches!(check_register(1, 0, &ops), RegisterVerdict::Ok));
        }
    }

    #[test]
    fn initial_value_is_zero() {
        let ops = vec![r(0, 10, 0)];
        assert!(matches!(check_register(1, 0, &ops), RegisterVerdict::Ok));
        let ops = vec![r(0, 10, 3)];
        assert!(matches!(
            check_register(1, 0, &ops),
            RegisterVerdict::Violation(_)
        ));
    }
}
