//! Deterministic workload generation, crash-schedule exploration, and
//! failing-schedule minimization.
//!
//! A [`Scenario`] is a seed-derived NFS operation sequence; a [`Schedule`]
//! is a list of fault injections (node crashes with recovery, packet-loss
//! windows) pinned to simulated times. [`run_schedule`] executes one
//! (scenario, schedule) pair in a fresh ensemble and runs every oracle over
//! the outcome; [`sweep`] fans that out over N seeds × M schedules and
//! exports a deterministic slice-obs JSON report; [`minimize`] shrinks a
//! failing schedule by bisection.
//!
//! Everything is a pure function of its seed: the same inputs replay the
//! same packets, crashes, and oracle verdicts, byte for byte.

use slice_core::ensemble::{SliceConfig, SliceEnsemble};
use slice_core::{ClientIo, OpHistory, Workload, CHUNK_BYTES};
use slice_nfsproto::{Fhandle, NfsReply, NfsRequest, NfsStatus, ReplyBody, Sattr3, StableHow};
use slice_obs::Obs;
use slice_sim::{NodeId, Rng, SimDuration, SimTime};

use crate::oracle::{check_histories, OracleStats};
use crate::state::{
    check_structural, check_structural_strict, snapshot, snapshot_diff, VolumeSnapshot,
};
use crate::Violation;

/// Ceiling on generated read/write transfer so epilogue reads stay sane.
const MAX_IO_BYTES: u64 = 256 * 1024;
/// Simulated-time budget for one schedule run.
const RUN_DEADLINE_SECS: u64 = 600;

/// One generated operation. `slot` values index the driver's handle table
/// (slot 0 is the volume root); `LookupBind` is what binds a slot, so every
/// `Create`/`Mkdir` is followed by one — a create acknowledged only on a
/// retransmission answers `Exist` without a handle, and the bind must
/// still succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenOp {
    /// Make a directory `name` under the directory at `parent`.
    Mkdir { parent: usize, name: String },
    /// Create a regular file `name` under the directory at `parent`.
    Create { parent: usize, name: String },
    /// Look up `name` under `parent` and bind the resulting handle to
    /// `slot`.
    LookupBind {
        slot: usize,
        parent: usize,
        name: String,
    },
    /// FileSync write of `len` bytes of `val` at `offset`.
    Write {
        slot: usize,
        offset: u64,
        len: u32,
        val: u8,
    },
    /// Read `len` bytes at `offset`.
    Read { slot: usize, offset: u64, len: u32 },
    /// Truncate (or zero-extend) to `size` bytes via SETATTR.
    Truncate { slot: usize, size: u64 },
    /// Remove the file `name` under `parent`.
    Remove { parent: usize, name: String },
    /// Rename `from_name` under `from` to `to_name` under `to`.
    Rename {
        from: usize,
        from_name: String,
        to: usize,
        to_name: String,
    },
    /// List the directory at `slot`.
    Readdir { slot: usize },
    /// Fetch attributes of the file at `slot`.
    Getattr { slot: usize },
    /// Commit unstable data of the file at `slot`.
    Commit { slot: usize },
}

/// A seed-derived operation sequence plus the slot-table size it needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The seed this scenario was generated from.
    pub seed: u64,
    /// Operations in program order.
    pub ops: Vec<GenOp>,
    /// Handle slots referenced (slot 0 = root).
    pub slots: usize,
    /// Index of the first epilogue op (re-lookup + getattr + full read of
    /// every surviving file), for reporting.
    pub epilogue_start: usize,
}

struct FileModel {
    slot: usize,
    parent: usize,
    name: String,
    big: bool,
    size: u64,
}

/// Generates a deterministic scenario of roughly `n_ops` operations:
/// a mixed namespace/data workload over ≤ 8 directories and ≤ 24 files
/// (one in five striped "big" files crossing the small-file threshold),
/// all writes FileSync with 1 KiB-aligned uniform-byte payloads so the
/// per-chunk register model sees every transfer, followed by an epilogue
/// that re-looks-up, stats, and fully reads every surviving file.
pub fn generate_scenario(seed: u64, n_ops: usize) -> Scenario {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut ops = Vec::new();
    let mut next_slot = 1usize;
    let mut next_name = 0u64;
    let mut dirs: Vec<usize> = vec![0];
    let mut files: Vec<FileModel> = Vec::new();

    while ops.len() < n_ops {
        let roll = rng.gen_range(0..100u32);
        match roll {
            // Create a file (falls through to a write when at capacity).
            0..=17 if files.len() < 24 => {
                let parent = dirs[rng.gen_range(0..dirs.len() as u64) as usize];
                let name = format!("f{next_name}");
                next_name += 1;
                let slot = next_slot;
                next_slot += 1;
                ops.push(GenOp::Create {
                    parent,
                    name: name.clone(),
                });
                ops.push(GenOp::LookupBind {
                    slot,
                    parent,
                    name: name.clone(),
                });
                files.push(FileModel {
                    slot,
                    parent,
                    name,
                    big: rng.gen_bool(0.2),
                    size: 0,
                });
            }
            18..=25 if dirs.len() < 8 => {
                let parent = dirs[rng.gen_range(0..dirs.len() as u64) as usize];
                let name = format!("d{next_name}");
                next_name += 1;
                let slot = next_slot;
                next_slot += 1;
                ops.push(GenOp::Mkdir {
                    parent,
                    name: name.clone(),
                });
                ops.push(GenOp::LookupBind { slot, parent, name });
                dirs.push(slot);
            }
            _ if files.is_empty() => {
                // Nothing to operate on yet; force a create next round.
                continue;
            }
            // Data ops and the rest target a random live file.
            _ => {
                let fi = rng.gen_range(0..files.len() as u64) as usize;
                match roll {
                    26..=55 => {
                        let f = &mut files[fi];
                        let (offset, len) = if f.big {
                            (
                                16 * 1024 * rng.gen_range(0..8u64),
                                16 * 1024 * rng.gen_range(1..=4u64),
                            )
                        } else {
                            (
                                CHUNK_BYTES * rng.gen_range(0..16u64),
                                CHUNK_BYTES * rng.gen_range(1..=4u64),
                            )
                        };
                        let val = rng.gen_range(1..=255u64) as u8;
                        ops.push(GenOp::Write {
                            slot: f.slot,
                            offset,
                            len: len as u32,
                            val,
                        });
                        f.size = f.size.max(offset + len);
                    }
                    56..=73 => {
                        let f = &files[fi];
                        let span = if f.big { 16 * 1024 } else { CHUNK_BYTES };
                        let offset = span * rng.gen_range(0..8u64);
                        let len = span * rng.gen_range(1..=4u64);
                        ops.push(GenOp::Read {
                            slot: f.slot,
                            offset,
                            len: len as u32,
                        });
                    }
                    74..=79 => {
                        let f = &mut files[fi];
                        let size = CHUNK_BYTES * rng.gen_range(0..=(f.size / CHUNK_BYTES) + 2);
                        ops.push(GenOp::Truncate { slot: f.slot, size });
                        f.size = size;
                    }
                    80..=84 if files.len() > 1 => {
                        let f = files.remove(fi);
                        ops.push(GenOp::Remove {
                            parent: f.parent,
                            name: f.name,
                        });
                    }
                    85..=89 => {
                        let to = dirs[rng.gen_range(0..dirs.len() as u64) as usize];
                        let to_name = format!("f{next_name}");
                        next_name += 1;
                        let f = &mut files[fi];
                        ops.push(GenOp::Rename {
                            from: f.parent,
                            from_name: f.name.clone(),
                            to,
                            to_name: to_name.clone(),
                        });
                        f.parent = to;
                        f.name = to_name;
                    }
                    90..=93 => {
                        let d = dirs[rng.gen_range(0..dirs.len() as u64) as usize];
                        ops.push(GenOp::Readdir { slot: d });
                    }
                    94..=97 => ops.push(GenOp::Getattr {
                        slot: files[fi].slot,
                    }),
                    _ => ops.push(GenOp::Commit {
                        slot: files[fi].slot,
                    }),
                }
            }
        }
    }

    // Epilogue: verify every surviving file end-to-end.
    let epilogue_start = ops.len();
    for f in &files {
        ops.push(GenOp::LookupBind {
            slot: f.slot,
            parent: f.parent,
            name: f.name.clone(),
        });
        ops.push(GenOp::Getattr { slot: f.slot });
        if f.size > 0 {
            ops.push(GenOp::Read {
                slot: f.slot,
                offset: 0,
                len: f.size.min(MAX_IO_BYTES) as u32,
            });
        }
    }
    for &d in &dirs[1..] {
        ops.push(GenOp::Readdir { slot: d });
    }

    Scenario {
        seed,
        ops,
        slots: next_slot,
        epilogue_start,
    }
}

/// Drives a [`Scenario`] one operation at a time: each op is issued only
/// after the previous one completed, so program order equals real-time
/// order and the recorded history is sequential per client. Ops whose
/// handle slot never bound (the binding lookup failed) are skipped and
/// counted. A JukeBox answer — a µproxy whose directory table was stale
/// beyond its own bounce handling — re-issues the op with a fresh xid.
pub struct DriverWorkload {
    scenario: Scenario,
    pc: usize,
    slots: Vec<Option<Fhandle>>,
    /// Scenario op index of each history record, in record order.
    pub issued: Vec<usize>,
    /// Scenario op indices skipped because a slot never bound.
    pub skipped: Vec<usize>,
    /// Ops re-issued after a JukeBox reply.
    pub jukebox_reissues: u64,
    done: bool,
}

impl DriverWorkload {
    /// Builds a driver for `scenario`.
    pub fn new(scenario: Scenario) -> Self {
        let mut slots = vec![None; scenario.slots.max(1)];
        slots[0] = Some(Fhandle::root());
        DriverWorkload {
            scenario,
            pc: 0,
            slots,
            issued: Vec::new(),
            skipped: Vec::new(),
            jukebox_reissues: 0,
            done: false,
        }
    }

    /// The scenario being driven.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn request_for(&self, idx: usize) -> Option<NfsRequest> {
        let fh = |slot: usize| self.slots[slot];
        Some(match &self.scenario.ops[idx] {
            GenOp::Mkdir { parent, name } => NfsRequest::Mkdir {
                dir: fh(*parent)?,
                name: name.clone(),
                attr: Sattr3::default(),
            },
            GenOp::Create { parent, name } => NfsRequest::Create {
                dir: fh(*parent)?,
                name: name.clone(),
                attr: Sattr3 {
                    mode: Some(0o644),
                    ..Default::default()
                },
            },
            GenOp::LookupBind { parent, name, .. } => NfsRequest::Lookup {
                dir: fh(*parent)?,
                name: name.clone(),
            },
            GenOp::Write {
                slot,
                offset,
                len,
                val,
            } => NfsRequest::Write {
                fh: fh(*slot)?,
                offset: *offset,
                stable: StableHow::FileSync,
                data: vec![*val; *len as usize],
            },
            GenOp::Read { slot, offset, len } => NfsRequest::Read {
                fh: fh(*slot)?,
                offset: *offset,
                count: *len,
            },
            GenOp::Truncate { slot, size } => NfsRequest::Setattr {
                fh: fh(*slot)?,
                attr: Sattr3 {
                    size: Some(*size),
                    ..Default::default()
                },
            },
            GenOp::Remove { parent, name } => NfsRequest::Remove {
                dir: fh(*parent)?,
                name: name.clone(),
            },
            GenOp::Rename {
                from,
                from_name,
                to,
                to_name,
            } => NfsRequest::Rename {
                from_dir: fh(*from)?,
                from_name: from_name.clone(),
                to_dir: fh(*to)?,
                to_name: to_name.clone(),
            },
            GenOp::Readdir { slot } => NfsRequest::Readdir {
                dir: fh(*slot)?,
                cookie: 0,
                cookieverf: 0,
                count: 64 * 1024,
            },
            GenOp::Getattr { slot } => NfsRequest::Getattr { fh: fh(*slot)? },
            GenOp::Commit { slot } => NfsRequest::Commit {
                fh: fh(*slot)?,
                offset: 0,
                count: 0,
            },
        })
    }

    fn issue(&mut self, io: &mut ClientIo<'_, '_>) {
        while self.pc < self.scenario.ops.len() {
            match self.request_for(self.pc) {
                Some(req) => {
                    self.issued.push(self.pc);
                    io.call(self.pc as u64, req);
                    return;
                }
                None => {
                    self.skipped.push(self.pc);
                    self.pc += 1;
                }
            }
        }
        self.done = true;
    }
}

impl Workload for DriverWorkload {
    fn start(&mut self, io: &mut ClientIo<'_, '_>) {
        self.issue(io);
    }

    fn on_reply(&mut self, io: &mut ClientIo<'_, '_>, tag: u64, reply: &NfsReply) {
        let idx = tag as usize;
        if reply.status == NfsStatus::JukeBox {
            // Not executed; retry the same op under a fresh xid.
            if let Some(req) = self.request_for(idx) {
                self.jukebox_reissues += 1;
                self.issued.push(idx);
                io.call(tag, req);
                return;
            }
        }
        if let (GenOp::LookupBind { slot, .. }, ReplyBody::Lookup { fh, .. }) =
            (&self.scenario.ops[idx], &reply.body)
        {
            if reply.status == NfsStatus::Ok {
                self.slots[*slot] = Some(*fh);
            }
        }
        self.pc = idx + 1;
        self.issue(io);
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// One fault injection. Crashed nodes recover after `down_ms`; a loss
/// window raises the network's drop probability for `dur_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injection {
    /// Crash directory server `site`.
    CrashDir { site: usize, down_ms: u64 },
    /// Crash small-file server `site`.
    CrashSf { site: usize, down_ms: u64 },
    /// Crash storage node `site`.
    CrashStorage { site: usize, down_ms: u64 },
    /// Crash coordinator `site`.
    CrashCoord { site: usize, down_ms: u64 },
    /// Drop `permille`/1000 of packets for `dur_ms`.
    LossWindow { permille: u32, dur_ms: u64 },
    /// Duplicate `permille`/1000 of datagrams for `dur_ms`. Only
    /// datagram traffic (client UDP) is eligible; typed control channels
    /// model reliable transports and are exempt.
    DupWindow { permille: u32, dur_ms: u64 },
    /// Reorder datagram arrivals within a `window_ms` jitter window for
    /// `dur_ms`.
    ReorderWindow { window_ms: u64, dur_ms: u64 },
    /// Bring standby storage site `site` into the placement rotation and
    /// rebalance a share of existing block-map entries onto it. Only
    /// meaningful against the reconf ensemble (five sites, four active).
    JoinStorage { site: usize },
    /// Planned drain of storage site `site`: migrate every block-map
    /// entry off it, then retire it (distinct from a crash — the site
    /// serves reads while draining). The drain oracle verifies no chunk
    /// is stranded and no map entry orphaned afterwards.
    DrainStorage { site: usize },
    /// Widen the hottest file (per the µproxies' sliding hot window) by
    /// one pinned replica; a no-op when nothing is hot yet.
    WidenHot,
}

/// An [`Injection`] pinned to a simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEvent {
    /// Injection time in simulated milliseconds.
    pub at_ms: u64,
    /// What to inject.
    pub inject: Injection,
}

/// A fault schedule; the empty schedule is the crash-free reference run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Events in any order; the runner sorts an expanded timeline.
    pub events: Vec<ScheduleEvent>,
}

impl Schedule {
    /// One-line description for reports.
    pub fn describe(&self) -> String {
        if self.events.is_empty() {
            return "crash-free".to_string();
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|e| format!("{:?}@{}ms", e.inject, e.at_ms))
            .collect();
        parts.join(", ")
    }
}

/// What one (scenario, schedule) run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Simulated completion time.
    pub finish: SimTime,
    /// The workload did not finish before the deadline.
    pub stalled: bool,
    /// History records that completed (reply reached the workload).
    pub completed_ops: usize,
    /// Scenario ops skipped because a handle slot never bound.
    pub skipped_ops: usize,
    /// Everything every oracle found (empty = run passed).
    pub violations: Vec<Violation>,
    /// Linearizability-search accounting.
    pub oracle_stats: OracleStats,
    /// Final namespace, for reference comparison.
    pub snapshot: VolumeSnapshot,
}

enum Act {
    Fail(NodeId),
    Recover(NodeId),
    /// Storage recovery goes through the ensemble so coordinators get a
    /// resync kick (mirrors [`SliceEnsemble::recover_storage_node`]).
    RecoverStorage(usize),
    LossOn(f64),
    LossOff,
    DupOn(f64),
    DupOff,
    ReorderOn(u64),
    ReorderOff,
    Join(usize),
    Drain(usize),
    WidenHot,
}

/// The ensemble every schedule runs against: one recorded client, two
/// directory sites (so reconfig/multisite paths are live), the default
/// four storage nodes with block maps on, and data retention for the
/// structural oracles.
fn explorer_config(seed: u64, shards: usize, coded: bool, reconf: bool) -> SliceConfig {
    SliceConfig {
        clients: 1,
        dir_servers: 2,
        record_history: true,
        retain_data: true,
        use_block_maps: true,
        coded: coded.then_some((4, 2)),
        // The reconf ensemble carries a fifth storage site held in
        // standby so join/drain schedules have somewhere to rebalance
        // to, and two-way mirrored mapped placement so widening and join
        // rebalance have replica sets to operate on; the base ensemble
        // is unchanged so existing sweep outputs stay stable.
        storage_nodes: if reconf { 5 } else { 4 },
        active_storage: reconf.then_some(4),
        mapped_mirror: reconf && !coded,
        seed,
        shards,
        ..SliceConfig::default()
    }
}

/// Runs `scenario` under `schedule` in a fresh ensemble and applies every
/// oracle: expected per-op status (with NFS retransmission tolerances),
/// register-model linearizability, structural invariants (strict object
/// backing on crash-free runs), and — when a crash-free `reference`
/// snapshot is supplied — WAL-replay namespace equivalence.
pub fn run_schedule(
    seed: u64,
    scenario: &Scenario,
    schedule: &Schedule,
    reference: Option<&VolumeSnapshot>,
) -> RunOutcome {
    run_schedule_sharded(seed, scenario, schedule, reference, 1)
}

/// [`run_schedule`] with the ensemble's engine partitioned across
/// `shards` time-synchronized shards. The outcome — every oracle
/// verdict, the finish time, the final namespace snapshot — is
/// shard-count-invariant; CI sweeps `--shards 1` against `--shards 4`
/// and `cmp`s the reports to prove it.
pub fn run_schedule_sharded(
    seed: u64,
    scenario: &Scenario,
    schedule: &Schedule,
    reference: Option<&VolumeSnapshot>,
    shards: usize,
) -> RunOutcome {
    run_schedule_coded(seed, scenario, schedule, reference, shards, false)
}

/// [`run_schedule_sharded`] with a placement choice: `coded` runs the
/// ensemble with every mapped file erasure-coded as (4,2) instead of
/// mirrored, so the same scenarios and fault schedules exercise striped
/// writes, degraded reads, and shard rebuilds — vetted by the
/// coded-reconstruction oracle.
pub fn run_schedule_coded(
    seed: u64,
    scenario: &Scenario,
    schedule: &Schedule,
    reference: Option<&VolumeSnapshot>,
    shards: usize,
    coded: bool,
) -> RunOutcome {
    run_schedule_reconf(seed, scenario, schedule, reference, shards, coded, false)
}

/// [`run_schedule_coded`] against the reconfiguration ensemble: a fifth
/// storage site starts in standby, `JoinStorage`/`DrainStorage`/`WidenHot`
/// injections are honored, and the drain oracle
/// ([`crate::state::check_drained`]) runs over every drained site at
/// quiescence.
pub fn run_schedule_reconf(
    seed: u64,
    scenario: &Scenario,
    schedule: &Schedule,
    reference: Option<&VolumeSnapshot>,
    shards: usize,
    coded: bool,
    reconf: bool,
) -> RunOutcome {
    let cfg = explorer_config(seed, shards, coded, reconf);
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(DriverWorkload::new(scenario.clone()))]);
    ens.start();

    // Expand events into a sorted (time, action) timeline: each crash gets
    // its recovery, each loss window its reset.
    let mut timeline: Vec<(u64, usize, Act)> = Vec::new();
    for (i, ev) in schedule.events.iter().enumerate() {
        let node = |v: &Vec<NodeId>, site: usize| v[site % v.len()];
        match ev.inject {
            Injection::CrashDir { site, down_ms } => {
                let n = node(&ens.dirs, site);
                timeline.push((ev.at_ms, i, Act::Fail(n)));
                timeline.push((ev.at_ms + down_ms, i, Act::Recover(n)));
            }
            Injection::CrashSf { site, down_ms } => {
                let n = node(&ens.sfs, site);
                timeline.push((ev.at_ms, i, Act::Fail(n)));
                timeline.push((ev.at_ms + down_ms, i, Act::Recover(n)));
            }
            Injection::CrashStorage { site, down_ms } => {
                let n = node(&ens.storage, site);
                let idx = site % ens.storage.len();
                timeline.push((ev.at_ms, i, Act::Fail(n)));
                timeline.push((ev.at_ms + down_ms, i, Act::RecoverStorage(idx)));
            }
            Injection::CrashCoord { site, down_ms } => {
                let n = node(&ens.coords, site);
                timeline.push((ev.at_ms, i, Act::Fail(n)));
                timeline.push((ev.at_ms + down_ms, i, Act::Recover(n)));
            }
            Injection::LossWindow { permille, dur_ms } => {
                timeline.push((ev.at_ms, i, Act::LossOn(permille as f64 / 1000.0)));
                timeline.push((ev.at_ms + dur_ms, i, Act::LossOff));
            }
            Injection::DupWindow { permille, dur_ms } => {
                timeline.push((ev.at_ms, i, Act::DupOn(permille as f64 / 1000.0)));
                timeline.push((ev.at_ms + dur_ms, i, Act::DupOff));
            }
            Injection::ReorderWindow { window_ms, dur_ms } => {
                timeline.push((ev.at_ms, i, Act::ReorderOn(window_ms)));
                timeline.push((ev.at_ms + dur_ms, i, Act::ReorderOff));
            }
            Injection::JoinStorage { site } => {
                timeline.push((ev.at_ms, i, Act::Join(site % ens.storage.len())));
            }
            Injection::DrainStorage { site } => {
                timeline.push((ev.at_ms, i, Act::Drain(site % ens.storage.len())));
            }
            Injection::WidenHot => timeline.push((ev.at_ms, i, Act::WidenHot)),
        }
    }
    timeline.sort_by_key(|(ms, ord, _)| (*ms, *ord));

    let mut drained: Vec<usize> = Vec::new();
    for (ms, _, act) in timeline {
        ens.engine.run_until(SimTime::from_nanos(ms * 1_000_000));
        match act {
            Act::Fail(n) => ens.engine.fail_node(n),
            Act::Recover(n) => ens.engine.recover_node(n),
            Act::RecoverStorage(i) => ens.recover_storage_node(i),
            Act::LossOn(p) => ens.engine.set_loss_prob(p),
            Act::LossOff => ens.engine.set_loss_prob(0.0),
            Act::DupOn(p) => ens.engine.set_dup_prob(p),
            Act::DupOff => ens.engine.set_dup_prob(0.0),
            Act::ReorderOn(ms) => ens.engine.set_reorder_window(SimDuration::from_millis(ms)),
            Act::ReorderOff => ens.engine.set_reorder_window(SimDuration::ZERO),
            Act::Join(i) => {
                ens.join_storage_node(i);
            }
            Act::Drain(i) => {
                ens.drain_storage_node(i);
                if !drained.contains(&i) {
                    drained.push(i);
                }
            }
            Act::WidenHot => {
                if let Some(&(file, _)) = ens.hot_files(1).first() {
                    ens.widen_file(file);
                }
            }
        }
    }
    let finish = ens.run_to_completion(SimTime::from_nanos(RUN_DEADLINE_SECS * 1_000_000_000));
    // The client-side half of every drain: once the migration log
    // drained, retire the site at the µproxies so the drain oracle can
    // check the suspicion purge too.
    for &s in &drained {
        ens.retire_storage_node(s);
    }

    let stalled = !ens.client(0).finished();
    let mut violations = Vec::new();
    if stalled {
        violations.push(Violation::new(
            "stalled",
            format!(
                "workload did not finish by {}s simulated",
                RUN_DEADLINE_SECS
            ),
        ));
    }

    let histories = ens.histories();
    let driver = ens
        .client(0)
        .workload()
        .and_then(|w| w.as_any().downcast_ref::<DriverWorkload>())
        .expect("run_schedule drives a DriverWorkload");
    violations.extend(check_expectations(scenario, driver, histories[0]));
    let (hist_violations, oracle_stats) = check_histories(&histories);
    violations.extend(hist_violations);
    violations.extend(if schedule.events.is_empty() {
        check_structural_strict(&ens)
    } else {
        check_structural(&ens)
    });
    if !drained.is_empty() && !stalled {
        violations.extend(crate::state::check_drained(&ens, &drained));
    }

    let snap = snapshot(&ens);
    if let Some(reference) = reference {
        if !stalled {
            for d in snapshot_diff(reference, &snap) {
                violations.push(Violation::new("replay_equivalence", d));
            }
        }
    }

    RunOutcome {
        finish,
        stalled,
        completed_ops: histories[0]
            .records()
            .iter()
            .filter(|r| r.end.is_some())
            .count(),
        skipped_ops: driver.skipped.len(),
        violations,
        oracle_stats,
        snapshot: snap,
    }
}

/// Checks every completed op's status against the scenario's expectation.
/// All generated ops expect `Ok`; per NFS retransmission semantics a
/// re-executed non-idempotent op may legally answer `Exist`
/// (create/mkdir) or `NoEnt` (remove/rename), but only when the RPC layer
/// actually retransmitted or the op was re-issued after a JukeBox bounce.
fn check_expectations(
    scenario: &Scenario,
    driver: &DriverWorkload,
    hist: &OpHistory,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let records = hist.records();
    if records.len() != driver.issued.len() {
        v.push(Violation::new(
            "recorder",
            format!(
                "driver issued {} calls, history holds {} records",
                driver.issued.len(),
                records.len()
            ),
        ));
        return v;
    }
    // Multiple records per op index are possible (JukeBox re-issue); the
    // last one is the authoritative outcome.
    let mut last: Vec<Option<usize>> = vec![None; scenario.ops.len()];
    let mut reissued = vec![false; scenario.ops.len()];
    for (ri, &oi) in driver.issued.iter().enumerate() {
        if last[oi].is_some() {
            reissued[oi] = true;
        }
        last[oi] = Some(ri);
    }
    for (oi, ri) in last.iter().enumerate() {
        let Some(ri) = ri else { continue };
        let rec = &records[*ri];
        let Some(status) = rec.status else {
            continue; // incomplete: the stalled check reports it
        };
        let retried = rec.retries > 0 || reissued[oi];
        let tolerated = match (&scenario.ops[oi], status) {
            (_, NfsStatus::Ok) => true,
            (GenOp::Create { .. } | GenOp::Mkdir { .. }, NfsStatus::Exist) => retried,
            (GenOp::Remove { .. } | GenOp::Rename { .. }, NfsStatus::NoEnt) => retried,
            _ => false,
        };
        if !tolerated {
            v.push(Violation::new(
                "expected_status",
                format!(
                    "op {oi} {:?} answered {status:?} (retries {})",
                    scenario.ops[oi], rec.retries
                ),
            ));
        }
    }
    v
}

/// Generates `m` deterministic fault schedules for a seed, cycling over
/// the four injection kinds (directory crash, storage crash, coordinator
/// crash, 2% loss window) with times drawn inside `horizon_ms` — pass the
/// reference run's finish time so injections land mid-workload. Every
/// other schedule carries a second injection.
pub fn standard_schedules(seed: u64, m: usize, horizon_ms: u64) -> Vec<Schedule> {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f) ^ 0x5c3d);
    let horizon = horizon_ms.max(100);
    let at = |rng: &mut Rng| horizon / 10 + rng.gen_range(0..horizon.max(2) * 8 / 10);
    (0..m)
        .map(|j| {
            let mut events = Vec::new();
            let n = 1 + (j % 2);
            for k in 0..n {
                let at_ms = at(&mut rng);
                let down_ms = rng.gen_range(1500..2500u64);
                let inject = match (j + k) % 4 {
                    0 => Injection::CrashDir {
                        site: rng.gen_range(0..2u64) as usize,
                        down_ms,
                    },
                    1 => Injection::CrashStorage {
                        site: rng.gen_range(0..4u64) as usize,
                        down_ms,
                    },
                    2 => Injection::CrashCoord { site: 0, down_ms },
                    _ => Injection::LossWindow {
                        permille: 20,
                        dur_ms: rng.gen_range(1000..3000u64),
                    },
                };
                events.push(ScheduleEvent { at_ms, inject });
            }
            Schedule { events }
        })
        .collect()
}

/// Generates `m` deterministic chaos schedules: the standard injection
/// kinds plus datagram duplication and reordering windows, with every
/// third schedule stacking a second crash on top of the base fault —
/// the stacked crash cycles through the node classes (storage,
/// directory, coordinator, small-file), so failover, degraded writes,
/// resync, reconfiguration, and intent recovery all run under message
/// chaos and multi-class failures. Times are drawn inside `horizon_ms`,
/// like [`standard_schedules`] (which is left unchanged so existing
/// sweep outputs stay stable).
pub fn chaos_schedules(seed: u64, m: usize, horizon_ms: u64) -> Vec<Schedule> {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9fb2_1c65_1e98_df25) ^ 0xc4a05);
    let horizon = horizon_ms.max(100);
    let at = |rng: &mut Rng| horizon / 10 + rng.gen_range(0..horizon.max(2) * 8 / 10);
    (0..m)
        .map(|j| {
            let mut events = Vec::new();
            let down_ms = rng.gen_range(1500..2500u64);
            let dur_ms = rng.gen_range(1000..3000u64);
            let inject = match j % 5 {
                0 => Injection::DupWindow {
                    permille: 50,
                    dur_ms,
                },
                1 => Injection::ReorderWindow {
                    window_ms: rng.gen_range(1..=5u64),
                    dur_ms,
                },
                2 => Injection::CrashStorage {
                    site: rng.gen_range(0..4u64) as usize,
                    down_ms,
                },
                3 => Injection::LossWindow {
                    permille: 20,
                    dur_ms,
                },
                _ => Injection::CrashCoord { site: 0, down_ms },
            };
            events.push(ScheduleEvent {
                at_ms: at(&mut rng),
                inject,
            });
            if j % 3 == 2 {
                let down_ms = rng.gen_range(1500..2500u64);
                let stacked = match (j / 3) % 4 {
                    0 => Injection::CrashStorage {
                        site: rng.gen_range(0..4u64) as usize,
                        down_ms,
                    },
                    1 => Injection::CrashDir {
                        site: rng.gen_range(0..2u64) as usize,
                        down_ms,
                    },
                    2 => Injection::CrashCoord { site: 0, down_ms },
                    _ => Injection::CrashSf {
                        site: rng.gen_range(0..2u64) as usize,
                        down_ms,
                    },
                };
                events.push(ScheduleEvent {
                    at_ms: at(&mut rng),
                    inject: stacked,
                });
            }
            Schedule { events }
        })
        .collect()
}

/// [`chaos_schedules`] widened for coded layouts: every third schedule
/// stacks an additional storage crash, opening double-erasure windows
/// that an (n,k) code with n−k ≥ 2 must ride out (degraded writes park
/// the dead legs in the dirty log; reads decode from the k survivors).
pub fn coded_chaos_schedules(seed: u64, m: usize, horizon_ms: u64) -> Vec<Schedule> {
    let mut pool = chaos_schedules(seed, m, horizon_ms);
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0xd1b5_4a32_d192_ed03) ^ 0x5ec);
    let horizon = horizon_ms.max(100);
    for (j, sched) in pool.iter_mut().enumerate() {
        if j % 3 == 0 {
            let down_ms = rng.gen_range(1500..2500u64);
            let site = rng.gen_range(0..4u64) as usize;
            sched.events.push(ScheduleEvent {
                at_ms: horizon / 10 + rng.gen_range(0..horizon.max(2) * 8 / 10),
                inject: Injection::CrashStorage { site, down_ms },
            });
        }
    }
    pool
}

/// Generates `m` deterministic reconfiguration schedules: joins of the
/// standby fifth site, planned drains, hot-set widening, and — the
/// rebalance-mid-crash case — a node or coordinator crash landing while
/// migrations are in flight. Only meaningful against the reconf ensemble
/// ([`run_schedule_reconf`] with `reconf = true`); every schedule with a
/// drain is vetted by the drain oracle at quiescence.
pub fn reconf_schedules(seed: u64, m: usize, horizon_ms: u64) -> Vec<Schedule> {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x8f9a_6c44_0b1e_77d3) ^ 0x1d7a2);
    let horizon = horizon_ms.max(100);
    let at = |rng: &mut Rng| horizon / 10 + rng.gen_range(0..horizon.max(2) * 8 / 10);
    (0..m)
        .map(|j| {
            let mut events = Vec::new();
            match j % 4 {
                0 => {
                    // Full capacity cycle: join the spare, then drain an
                    // original site onto the widened rotation.
                    let t = at(&mut rng);
                    events.push(ScheduleEvent {
                        at_ms: t,
                        inject: Injection::JoinStorage { site: 4 },
                    });
                    events.push(ScheduleEvent {
                        at_ms: t + rng.gen_range(200..800u64),
                        inject: Injection::DrainStorage {
                            site: rng.gen_range(0..4u64) as usize,
                        },
                    });
                }
                1 => {
                    // Rebalance mid-crash: a neighbor of the draining
                    // site crashes while its migrations are in flight.
                    let t = at(&mut rng);
                    let drain_site = rng.gen_range(0..4u64) as usize;
                    events.push(ScheduleEvent {
                        at_ms: t,
                        inject: Injection::JoinStorage { site: 4 },
                    });
                    events.push(ScheduleEvent {
                        at_ms: t + 100,
                        inject: Injection::DrainStorage { site: drain_site },
                    });
                    events.push(ScheduleEvent {
                        at_ms: t + rng.gen_range(150..600u64),
                        inject: Injection::CrashStorage {
                            site: (drain_site + 1) % 4,
                            down_ms: rng.gen_range(1500..2500u64),
                        },
                    });
                }
                2 => {
                    // Demand-driven replication under packet loss.
                    events.push(ScheduleEvent {
                        at_ms: at(&mut rng),
                        inject: Injection::WidenHot,
                    });
                    events.push(ScheduleEvent {
                        at_ms: at(&mut rng),
                        inject: Injection::LossWindow {
                            permille: 20,
                            dur_ms: rng.gen_range(1000..3000u64),
                        },
                    });
                }
                _ => {
                    // Rebalance across a coordinator crash: migration
                    // intents and site changes replay from the WAL.
                    let t = at(&mut rng);
                    events.push(ScheduleEvent {
                        at_ms: t,
                        inject: Injection::JoinStorage { site: 4 },
                    });
                    events.push(ScheduleEvent {
                        at_ms: t + rng.gen_range(50..400u64),
                        inject: Injection::CrashCoord {
                            site: 0,
                            down_ms: rng.gen_range(1500..2500u64),
                        },
                    });
                }
            }
            Schedule { events }
        })
        .collect()
}

/// One failing run inside a [`SweepReport`].
#[derive(Debug)]
pub struct SweepFailure {
    /// Seed whose scenario failed.
    pub seed: u64,
    /// Schedule index, or `None` for the crash-free reference run.
    pub schedule: Option<usize>,
    /// Human-readable schedule.
    pub schedule_desc: String,
    /// What the oracles found.
    pub violations: Vec<Violation>,
}

/// Result of an N-seed × M-schedule sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Total runs executed (references + schedules).
    pub runs: usize,
    /// Total history records checked across all runs.
    pub ops_checked: usize,
    /// Every failing run.
    pub failures: Vec<SweepFailure>,
    /// Deterministic slice-obs JSON: same seeds → byte-identical output,
    /// for any thread count. This is the document CI `cmp`s.
    pub json: String,
    /// The same document plus informational host-timing gauges
    /// (`checker.wall_s`, `checker.threads`, `checker.runs_per_host_s`).
    /// Not deterministic across hosts or runs — never `cmp` this one.
    pub timed_json: String,
}

impl SweepReport {
    /// True when every run passed every oracle.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweeps `seeds` × `schedules_per_seed`: for each seed, generate a
/// scenario, run it crash-free to establish the reference namespace, then
/// replay it under each fault schedule and compare. The report's JSON is
/// a deterministic function of the inputs.
pub fn sweep(seeds: &[u64], schedules_per_seed: usize) -> SweepReport {
    sweep_with(seeds, schedules_per_seed, false)
}

/// [`sweep`] with a schedule-pool choice: `chaos` swaps
/// [`standard_schedules`] for [`chaos_schedules`] (duplication and
/// reordering windows, stacked storage crashes).
pub fn sweep_with(seeds: &[u64], schedules_per_seed: usize, chaos: bool) -> SweepReport {
    sweep_with_threads(seeds, schedules_per_seed, chaos, 1)
}

/// Everything one seed's portion of the sweep produced, harvested on a
/// worker thread and merged on the caller's thread in seed order.
struct SeedOutcome {
    runs: usize,
    ops_checked: usize,
    violations: u64,
    stalled: u64,
    failures: Vec<SweepFailure>,
}

/// [`sweep_with`] fanned out over the slice-par runtime: each seed's
/// reference run and schedule replays execute as one independent task
/// (every run builds a fresh ensemble, so tasks share nothing), and the
/// per-seed outcomes are folded into the report strictly in seed order.
/// The exported JSON is byte-identical for any `threads`, including the
/// sequential `threads == 1` path, because the folded counters are sums
/// of per-seed values that do not depend on scheduling.
pub fn sweep_with_threads(
    seeds: &[u64],
    schedules_per_seed: usize,
    chaos: bool,
    threads: usize,
) -> SweepReport {
    sweep_sharded(seeds, schedules_per_seed, chaos, threads, 1)
}

/// [`sweep_with_threads`] with each run's engine partitioned across
/// `shards` shards. The deterministic report is shard-count-invariant,
/// so `shards` only changes how much of the host each individual run
/// uses; combining `threads > 1` with `shards > 1` oversubscribes the
/// host and is only useful for cross-checking determinism.
pub fn sweep_sharded(
    seeds: &[u64],
    schedules_per_seed: usize,
    chaos: bool,
    threads: usize,
    shards: usize,
) -> SweepReport {
    sweep_coded(seeds, schedules_per_seed, chaos, threads, shards, false)
}

/// [`sweep_sharded`] with a placement choice: `coded` runs every ensemble
/// with (4,2) erasure coding for mapped files (see [`run_schedule_coded`])
/// and — when `chaos` is also set — widens the schedule pool with stacked
/// storage crashes ([`coded_chaos_schedules`]).
pub fn sweep_coded(
    seeds: &[u64],
    schedules_per_seed: usize,
    chaos: bool,
    threads: usize,
    shards: usize,
    coded: bool,
) -> SweepReport {
    sweep_reconf(
        seeds,
        schedules_per_seed,
        chaos,
        threads,
        shards,
        coded,
        false,
    )
}

/// [`sweep_coded`] with a reconfiguration choice: `reconf` runs every
/// ensemble with a fifth standby storage site (see [`run_schedule_reconf`])
/// and swaps the schedule pool for [`reconf_schedules`] — joins, planned
/// drains, hot-set widening, and rebalance-mid-crash stacks — with the
/// drain oracle vetting every drained site at quiescence.
pub fn sweep_reconf(
    seeds: &[u64],
    schedules_per_seed: usize,
    chaos: bool,
    threads: usize,
    shards: usize,
    coded: bool,
    reconf: bool,
) -> SweepReport {
    let start = std::time::Instant::now();
    let outcomes = slice_sim::par::run_indexed(threads, seeds.to_vec(), |_, seed| {
        let scenario = generate_scenario(seed, 96);
        let reference = run_schedule_reconf(
            seed,
            &scenario,
            &Schedule::default(),
            None,
            shards,
            coded,
            reconf,
        );
        let mut o = SeedOutcome {
            runs: 1,
            ops_checked: reference.completed_ops,
            violations: reference.violations.len() as u64,
            stalled: 0,
            failures: Vec::new(),
        };
        if !reference.violations.is_empty() {
            o.failures.push(SweepFailure {
                seed,
                schedule: None,
                schedule_desc: "crash-free".to_string(),
                violations: reference.violations.clone(),
            });
        }

        let horizon_ms = reference.finish.as_nanos() / 1_000_000;
        let schedules = if reconf {
            reconf_schedules(seed, schedules_per_seed, horizon_ms)
        } else if chaos && coded {
            coded_chaos_schedules(seed, schedules_per_seed, horizon_ms)
        } else if chaos {
            chaos_schedules(seed, schedules_per_seed, horizon_ms)
        } else {
            standard_schedules(seed, schedules_per_seed, horizon_ms)
        };
        for (j, sched) in schedules.iter().enumerate() {
            let out = run_schedule_reconf(
                seed,
                &scenario,
                sched,
                Some(&reference.snapshot),
                shards,
                coded,
                reconf,
            );
            o.runs += 1;
            o.ops_checked += out.completed_ops;
            o.violations += out.violations.len() as u64;
            if out.stalled {
                o.stalled += 1;
            }
            if !out.violations.is_empty() {
                o.failures.push(SweepFailure {
                    seed,
                    schedule: Some(j),
                    schedule_desc: sched.describe(),
                    violations: out.violations,
                });
            }
        }
        o
    });

    // Merge in seed order. Counter folds are sums, so the final registry
    // matches what the serial loop would have produced, entry for entry.
    let mut obs = Obs::new();
    let mut failures = Vec::new();
    let mut runs = 0usize;
    let mut ops_checked = 0usize;
    for (&seed, o) in seeds.iter().zip(outcomes) {
        let tag = format!("checker.seed.{seed}");
        obs.registry.add(&format!("{tag}.runs"), o.runs as u64);
        obs.registry
            .add(&format!("{tag}.ops"), o.ops_checked as u64);
        obs.registry.add(&format!("{tag}.violations"), o.violations);
        if o.stalled > 0 {
            obs.registry.add(&format!("{tag}.stalled"), o.stalled);
        }
        runs += o.runs;
        ops_checked += o.ops_checked;
        failures.extend(o.failures);
    }

    obs.registry.add("checker.runs", runs as u64);
    obs.registry.add("checker.ops", ops_checked as u64);
    obs.registry
        .add("checker.failing_runs", failures.len() as u64);
    let json = obs.export_json(0);

    // Informational host-timing gauges ride in a second export so the
    // deterministic document above stays byte-comparable.
    let wall_s = start.elapsed().as_secs_f64();
    obs.registry.set_gauge("checker.wall_s", wall_s);
    obs.registry.set_gauge("checker.threads", threads as f64);
    if wall_s > 0.0 {
        obs.registry
            .set_gauge("checker.runs_per_host_s", runs as f64 / wall_s);
    }
    let timed_json = obs.export_json(0);

    SweepReport {
        runs,
        ops_checked,
        failures,
        json,
        timed_json,
    }
}

/// Shrinks a failing schedule: first by halving (delta debugging's outer
/// loop), then by dropping single events, re-running the oracles after
/// each candidate. Returns the smallest schedule that still fails (or the
/// input unchanged if it does not fail at all). Bounded at ~32 runs.
/// Candidate probes fan out over the slice-par pool at the host's
/// available parallelism; see [`minimize_with_threads`].
pub fn minimize(
    seed: u64,
    scenario: &Scenario,
    schedule: &Schedule,
    reference: &VolumeSnapshot,
) -> Schedule {
    minimize_with_threads(
        seed,
        scenario,
        schedule,
        reference,
        slice_sim::default_threads(),
    )
}

/// [`minimize`] with an explicit probe-pool width. Each shrinking step's
/// candidate schedules are independent runs, so they probe concurrently
/// over `run_indexed`; the serial scan order decides which failing
/// candidate is adopted and how much of the ~32-run budget each step
/// charges, so the result is identical to the sequential algorithm at
/// any `threads` — probes the serial loop would never have reached are
/// computed speculatively but never consulted.
pub fn minimize_with_threads(
    seed: u64,
    scenario: &Scenario,
    schedule: &Schedule,
    reference: &VolumeSnapshot,
    threads: usize,
) -> Schedule {
    let fails = |s: &Schedule| {
        !run_schedule(seed, scenario, s, Some(reference))
            .violations
            .is_empty()
    };
    if schedule.events.len() <= 1 || !fails(schedule) {
        return schedule.clone();
    }
    let mut cur = schedule.clone();
    let mut budget = 32usize;
    // Halving: probe both halves at once, but consult the second verdict
    // only when the serial loop would have had budget left to probe it.
    while cur.events.len() > 1 && budget > 0 {
        let mid = cur.events.len() / 2;
        let probe_second = budget >= 2;
        let mut candidates = vec![Schedule {
            events: cur.events[..mid].to_vec(),
        }];
        if probe_second {
            candidates.push(Schedule {
                events: cur.events[mid..].to_vec(),
            });
        }
        let verdicts = slice_sim::run_indexed(threads, candidates.clone(), |_, s| fails(&s));
        let mut candidates = candidates.into_iter();
        budget -= 1;
        if verdicts[0] {
            cur = candidates.next().expect("first half");
            continue;
        }
        if !probe_second {
            break;
        }
        budget -= 1;
        if verdicts[1] {
            cur = candidates.nth(1).expect("second half");
            continue;
        }
        break;
    }
    // Single-event drops: the serial scan probes positions i, i+1, ... in
    // order against an unchanged schedule until one fails, so a batch over
    // the remaining positions (capped at the budget) reproduces it exactly
    // — adopt the first failing position, charge for the probes up to it,
    // and rescan from there.
    let mut i = 0;
    while i < cur.events.len() && cur.events.len() > 1 && budget > 0 {
        let positions: Vec<usize> = (i..cur.events.len()).take(budget).collect();
        let verdicts = slice_sim::run_indexed(threads, positions.clone(), |_, j| {
            let mut t = cur.clone();
            t.events.remove(j);
            fails(&t)
        });
        match verdicts.iter().position(|&f| f) {
            Some(k) => {
                budget -= k + 1;
                i = positions[k];
                cur.events.remove(i);
            }
            None => break,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_generation_is_deterministic() {
        let a = generate_scenario(7, 64);
        let b = generate_scenario(7, 64);
        assert_eq!(a, b);
        assert!(a.ops.len() >= 64);
        assert!(a.epilogue_start <= a.ops.len());
        let c = generate_scenario(8, 64);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_schedules_are_deterministic_and_sized() {
        let a = standard_schedules(3, 8, 4000);
        let b = standard_schedules(3, 8, 4000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|s| !s.events.is_empty()));
    }

    #[test]
    fn sharded_schedule_run_matches_serial() {
        let scenario = generate_scenario(13, 40);
        let schedule = Schedule {
            events: vec![
                ScheduleEvent {
                    at_ms: 40,
                    inject: Injection::CrashStorage {
                        site: 1,
                        down_ms: 1500,
                    },
                },
                ScheduleEvent {
                    at_ms: 60,
                    inject: Injection::LossWindow {
                        permille: 20,
                        dur_ms: 500,
                    },
                },
            ],
        };
        let serial = run_schedule(13, &scenario, &schedule, None);
        for shards in [2usize, 4] {
            let sharded = run_schedule_sharded(13, &scenario, &schedule, None, shards);
            assert_eq!(serial.finish, sharded.finish, "shards={shards}");
            assert_eq!(serial.stalled, sharded.stalled, "shards={shards}");
            assert_eq!(
                serial.completed_ops, sharded.completed_ops,
                "shards={shards}"
            );
            assert_eq!(serial.violations, sharded.violations, "shards={shards}");
            assert!(
                crate::state::snapshot_diff(&serial.snapshot, &sharded.snapshot).is_empty(),
                "shards={shards}: final namespace diverged"
            );
        }
    }

    #[test]
    fn clean_run_passes_all_oracles() {
        let scenario = generate_scenario(11, 40);
        let out = run_schedule(11, &scenario, &Schedule::default(), None);
        assert!(!out.stalled);
        assert!(
            out.violations.is_empty(),
            "clean run violated: {:?}",
            out.violations
        );
        assert!(out.completed_ops >= 40);
    }

    #[test]
    fn reconf_schedules_are_deterministic_and_cover_drains() {
        let a = reconf_schedules(5, 8, 4000);
        let b = reconf_schedules(5, 8, 4000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().any(|s| s
            .events
            .iter()
            .any(|e| matches!(e.inject, Injection::DrainStorage { .. }))));
        assert!(a.iter().any(|s| s
            .events
            .iter()
            .any(|e| matches!(e.inject, Injection::WidenHot))));
    }

    /// The acceptance criterion for planned removal: run a join + drain
    /// schedule over a real workload and let the drain oracle prove no
    /// chunk is stranded on and no map entry still names the drained
    /// site, with every oracle from the crash pool still in force.
    #[test]
    fn join_then_drain_passes_drain_oracle() {
        let scenario = generate_scenario(17, 40);
        let reference =
            run_schedule_reconf(17, &scenario, &Schedule::default(), None, 1, false, true);
        assert!(
            reference.violations.is_empty(),
            "reconf reference run violated: {:?}",
            reference.violations
        );
        let schedule = Schedule {
            events: vec![
                ScheduleEvent {
                    at_ms: 50,
                    inject: Injection::JoinStorage { site: 4 },
                },
                ScheduleEvent {
                    at_ms: 300,
                    inject: Injection::DrainStorage { site: 1 },
                },
            ],
        };
        let out = run_schedule_reconf(
            17,
            &scenario,
            &schedule,
            Some(&reference.snapshot),
            1,
            false,
            true,
        );
        assert!(!out.stalled, "join+drain schedule stalled");
        assert!(
            out.violations.is_empty(),
            "join+drain violated: {:?}",
            out.violations
        );
    }

    #[test]
    fn reconf_run_is_shard_invariant() {
        let scenario = generate_scenario(19, 40);
        let schedule = Schedule {
            events: vec![
                ScheduleEvent {
                    at_ms: 60,
                    inject: Injection::JoinStorage { site: 4 },
                },
                ScheduleEvent {
                    at_ms: 200,
                    inject: Injection::WidenHot,
                },
                ScheduleEvent {
                    at_ms: 400,
                    inject: Injection::DrainStorage { site: 2 },
                },
            ],
        };
        let serial = run_schedule_reconf(19, &scenario, &schedule, None, 1, false, true);
        let sharded = run_schedule_reconf(19, &scenario, &schedule, None, 2, false, true);
        assert_eq!(serial.finish, sharded.finish);
        assert_eq!(serial.completed_ops, sharded.completed_ops);
        assert_eq!(serial.violations, sharded.violations);
        assert!(
            crate::state::snapshot_diff(&serial.snapshot, &sharded.snapshot).is_empty(),
            "final namespace diverged across shard counts"
        );
    }
}
