//! µproxy tests: drive real packets through the filter and inspect the
//! rewritten outputs.

use slice_nfsproto::{
    decode_reply, encode_call, encode_reply, AuthUnix, Fattr3, Fhandle, FileType, NfsProc,
    NfsReply, NfsRequest, NfsStatus, NfsTime, Packet, ReplyBody, Sattr3, SockAddr, StableHow,
    FH_FLAG_MIRRORED,
};
use slice_sim::{FxHashMap, FxHashSet, SimDuration, SimTime};
use slice_storage::{CoordMsg, CoordReply};

use crate::proxy::{ProxyConfig, ProxyNamePolicy, ProxyOut, Uproxy};

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn cfg() -> ProxyConfig {
    let mut c = ProxyConfig::test_default();
    c.dir_sites = vec![
        SockAddr::new(0x0a001000, 2049),
        SockAddr::new(0x0a001001, 2049),
    ];
    c.storage_sites = (0..4)
        .map(|i| SockAddr::new(0x0a003000 + i, 2049))
        .collect();
    c
}

fn call_pkt(p: &ProxyConfig, xid: u32, req: &NfsRequest) -> Packet {
    Packet::new(
        p.client_addr,
        p.virtual_addr,
        encode_call(xid, &AuthUnix::default(), req),
    )
}

fn reply_pkt(from: SockAddr, to: SockAddr, xid: u32, reply: &NfsReply) -> Packet {
    Packet::new(from, to, encode_reply(xid, reply))
}

fn fh(id: u64, flags: u8) -> Fhandle {
    Fhandle::new(id, 0, flags, 0, 0)
}

fn net_pkts(out: &[ProxyOut]) -> Vec<&Packet> {
    out.iter()
        .filter_map(|o| match o {
            ProxyOut::Net(p) => Some(p),
            _ => None,
        })
        .collect()
}

#[test]
fn non_virtual_traffic_passes_through() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let other = SockAddr::new(0x01020304, 80);
    let pkt = Packet::new(c.client_addr, other, vec![1, 2, 3]);
    let out = u.outbound(t(0), pkt.clone());
    assert_eq!(out.len(), 1);
    match &out[0] {
        ProxyOut::Net(p) => assert_eq!(*p, pkt),
        o => panic!("unexpected {o:?}"),
    }
}

#[test]
fn bulk_read_routes_to_storage_with_valid_checksum() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let req = NfsRequest::Read {
        fh: fh(10, 0),
        offset: 128 * 1024,
        count: 32768,
    };
    let out = u.outbound(t(0), call_pkt(&c, 1, &req));
    let pkts = net_pkts(&out);
    assert_eq!(pkts.len(), 1);
    let p = pkts[0];
    assert!(
        c.storage_sites.contains(&p.dst),
        "must target a storage node, got {}",
        p.dst
    );
    assert!(p.verify(), "rewrite must leave a valid checksum");
    // Same offset routes to the same node; next stripe to a different one.
    let out2 = u.outbound(t(1), call_pkt(&c, 2, &req));
    assert_eq!(net_pkts(&out2)[0].dst, p.dst);
    let req3 = NfsRequest::Read {
        fh: fh(10, 0),
        offset: 192 * 1024,
        count: 32768,
    };
    let out3 = u.outbound(t(2), call_pkt(&c, 3, &req3));
    assert_ne!(net_pkts(&out3)[0].dst, p.dst, "striping must rotate sites");
}

#[test]
fn small_io_routes_to_smallfile_server() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let req = NfsRequest::Read {
        fh: fh(10, 0),
        offset: 0,
        count: 8192,
    };
    let out = u.outbound(t(0), call_pkt(&c, 1, &req));
    assert_eq!(net_pkts(&out)[0].dst, c.sf_sites[0]);
    // Below-threshold I/O on a *large* file still goes to the small-file
    // server (the threshold is on offset, not size).
    let req = NfsRequest::Write {
        fh: fh(11, 0),
        offset: 32768,
        stable: StableHow::Unstable,
        data: vec![0u8; 1000],
    };
    let out = u.outbound(t(1), call_pkt(&c, 2, &req));
    assert_eq!(net_pkts(&out)[0].dst, c.sf_sites[0]);
}

#[test]
fn no_smallfile_servers_sends_everything_to_storage() {
    let mut c = cfg();
    c.sf_sites.clear();
    let mut u = Uproxy::new(c.clone());
    let req = NfsRequest::Read {
        fh: fh(10, 0),
        offset: 0,
        count: 8192,
    };
    let out = u.outbound(t(0), call_pkt(&c, 1, &req));
    assert!(c.storage_sites.contains(&net_pkts(&out)[0].dst));
}

#[test]
fn mirrored_write_duplicates_to_replicas() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let req = NfsRequest::Write {
        fh: fh(20, FH_FLAG_MIRRORED),
        offset: 128 * 1024,
        stable: StableHow::Unstable,
        data: vec![7u8; 4096],
    };
    let out = u.outbound(t(0), call_pkt(&c, 5, &req));
    let pkts = net_pkts(&out);
    assert_eq!(pkts.len(), 2, "two replicas");
    assert_ne!(pkts[0].dst, pkts[1].dst);
    assert!(pkts.iter().all(|p| p.verify()));
    // Only one merged reply reaches the client.
    let reply = NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            20,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Write {
            count: 4096,
            committed: StableHow::Unstable,
            verf: 1,
        },
    };
    let r1 = u.inbound(t(1), reply_pkt(pkts[0].dst, c.client_addr, 5, &reply));
    assert!(
        r1.iter().all(|o| !matches!(o, ProxyOut::Client(_))),
        "first reply absorbed"
    );
    let r2 = u.inbound(t(2), reply_pkt(pkts[1].dst, c.client_addr, 5, &reply));
    assert!(
        r2.iter().any(|o| matches!(o, ProxyOut::Client(_))),
        "second reply forwarded to client"
    );
}

#[test]
fn mirrored_reads_balance_across_all_nodes() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    // Reading a long mirrored file must touch every storage node (load-
    // balanced mirrors), the same stripe must always hit the same replica,
    // and each node must serve only about half the stripes it stores.
    let r_at = |u: &mut Uproxy, xid: u32, offset: u64| {
        let req = NfsRequest::Read {
            fh: fh(21, FH_FLAG_MIRRORED),
            offset,
            count: 65536,
        };
        net_pkts(&u.outbound(t(u64::from(xid)), call_pkt(&c, xid, &req)))[0].dst
    };
    let mut counts = FxHashMap::default();
    let stripes = 64u64;
    // Stripe 0 sits below the threshold offset and would route to the
    // small-file server; bulk striping starts at stripe 1.
    for s in 1..=stripes {
        let dst = r_at(&mut u, s as u32 + 1, s * 65536);
        *counts.entry(dst).or_insert(0u64) += 1;
        // Re-read of the same stripe is deterministic.
        assert_eq!(dst, r_at(&mut u, 1000 + s as u32, s * 65536));
    }
    assert_eq!(counts.len(), c.storage_sites.len(), "all nodes serve reads");
    for (&node, &n) in &counts {
        let share = n as f64 / stripes as f64;
        assert!(share > 0.15 && share < 0.35, "node {node} share {share}");
    }
}

#[test]
fn reply_src_is_rewritten_to_virtual_addr() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let req = NfsRequest::Getattr { fh: fh(30, 0) };
    let out = u.outbound(t(0), call_pkt(&c, 9, &req));
    let dest = net_pkts(&out)[0].dst;
    let reply = NfsReply::ok(
        NfsProc::Getattr,
        Fattr3::new(FileType::Regular, 30, 0o644, NfsTime::default()),
    );
    let back = u.inbound(t(1), reply_pkt(dest, c.client_addr, 9, &reply));
    let client_pkt = back
        .iter()
        .find_map(|o| match o {
            ProxyOut::Client(p) => Some(p),
            _ => None,
        })
        .expect("reply to client");
    assert_eq!(
        client_pkt.src, c.virtual_addr,
        "client must see the virtual server"
    );
    assert!(client_pkt.verify());
}

#[test]
fn attr_cache_patches_storage_replies() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    // Seed authoritative attrs via a getattr reply from the dir server.
    let f = fh(40, 0);
    let out = u.outbound(t(0), call_pkt(&c, 1, &NfsRequest::Getattr { fh: f }));
    let dir_dst = net_pkts(&out)[0].dst;
    let mut auth = Fattr3::new(FileType::Regular, 40, 0o640, NfsTime { secs: 10, nsecs: 0 });
    auth.nlink = 3;
    auth.uid = 42;
    u.inbound(
        t(1),
        reply_pkt(
            dir_dst,
            c.client_addr,
            1,
            &NfsReply::ok(NfsProc::Getattr, auth),
        ),
    );
    // Bulk write: reply from the storage node carries placeholder attrs;
    // the µproxy must patch in the authoritative ones, with size grown.
    let req = NfsRequest::Write {
        fh: f,
        offset: 100 * 1024,
        stable: StableHow::Unstable,
        data: vec![1u8; 32768],
    };
    let out = u.outbound(t(2), call_pkt(&c, 2, &req));
    let storage_dst = net_pkts(&out)[0].dst;
    let placeholder = Fattr3::new(FileType::Regular, 40, 0o644, NfsTime::default());
    let reply = NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(placeholder),
        body: ReplyBody::Write {
            count: 32768,
            committed: StableHow::Unstable,
            verf: 9,
        },
    };
    let back = u.inbound(t(3), reply_pkt(storage_dst, c.client_addr, 2, &reply));
    let client_pkt = back
        .iter()
        .find_map(|o| match o {
            ProxyOut::Client(p) => Some(p),
            _ => None,
        })
        .expect("reply to client");
    assert!(
        client_pkt.verify(),
        "in-place attr patch must fix the checksum"
    );
    let (_, patched) = decode_reply(&client_pkt.payload, NfsProc::Write).unwrap();
    let a = patched.attr.expect("attrs present");
    assert_eq!(a.uid, 42, "authoritative uid patched in");
    assert_eq!(a.nlink, 3);
    assert_eq!(a.size, 100 * 1024 + 32768, "size reflects the write");
}

#[test]
fn commit_pushes_dirty_attrs_to_dir_server() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let f = fh(50, 0);
    // A bulk write marks attrs dirty.
    let out = u.outbound(
        t(0),
        call_pkt(
            &c,
            1,
            &NfsRequest::Write {
                fh: f,
                offset: 80 * 1024,
                stable: StableHow::Unstable,
                data: vec![0u8; 8192],
            },
        ),
    );
    let storage_dst = net_pkts(&out)[0].dst;
    let reply = NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            50,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Write {
            count: 8192,
            committed: StableHow::Unstable,
            verf: 1,
        },
    };
    u.inbound(t(1), reply_pkt(storage_dst, c.client_addr, 1, &reply));
    // Commit: the µproxy initiates a SETATTR to the dir server.
    let out = u.outbound(
        t(2),
        call_pkt(
            &c,
            2,
            &NfsRequest::Commit {
                fh: f,
                offset: 0,
                count: 0,
            },
        ),
    );
    let setattrs: Vec<&Packet> = net_pkts(&out)
        .into_iter()
        .filter(|p| c.dir_sites.contains(&p.dst))
        .collect();
    assert_eq!(setattrs.len(), 1, "one attribute push-back expected");
    let (hdr, req) = slice_nfsproto::decode_call(&setattrs[0].payload).unwrap();
    assert!(hdr.xid >= 0x8000_0000, "µproxy-initiated xid namespace");
    match req {
        NfsRequest::Setattr { fh: got, attr } => {
            assert_eq!(got.file_id(), 50);
            assert_eq!(attr.size, Some(80 * 1024 + 8192));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Commit itself goes through the intent path (coordinator first).
    assert!(out.iter().any(|o| matches!(
        o,
        ProxyOut::Coord {
            msg: CoordMsg::BeginIntent { .. },
            ..
        }
    )));
}

#[test]
fn intent_ack_releases_commit_fanout() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let f = fh(60, 0);
    // Make the file "large" in the attr cache so commit is multisite.
    let out = u.outbound(
        t(0),
        call_pkt(
            &c,
            1,
            &NfsRequest::Write {
                fh: f,
                offset: 256 * 1024,
                stable: StableHow::Unstable,
                data: vec![0u8; 8192],
            },
        ),
    );
    let sdst = net_pkts(&out)[0].dst;
    let wreply = NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            60,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Write {
            count: 8192,
            committed: StableHow::Unstable,
            verf: 1,
        },
    };
    u.inbound(t(1), reply_pkt(sdst, c.client_addr, 1, &wreply));
    let out = u.outbound(
        t(2),
        call_pkt(
            &c,
            7,
            &NfsRequest::Commit {
                fh: f,
                offset: 0,
                count: 0,
            },
        ),
    );
    assert!(
        net_pkts(&out)
            .iter()
            .all(|p| !c.storage_sites.contains(&p.dst)),
        "commit must wait for the intent ack"
    );
    let out = u.coord_reply(
        t(3),
        CoordReply::IntentAck {
            op_id: 7,
            intent: 99,
        },
    );
    let pkts: Vec<Packet> = net_pkts(&out).into_iter().cloned().collect();
    // Fanned out to all storage sites plus the small-file server.
    assert_eq!(pkts.len(), c.storage_sites.len() + 1);
    // Completion of all replies emits CompleteIntent and one client reply.
    let creply = NfsReply {
        proc: NfsProc::Commit,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            60,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Commit { verf: 4 },
    };
    let mut client_replies = 0;
    let mut completes = 0;
    for p in &pkts {
        let back = u.inbound(t(4), reply_pkt(p.dst, c.client_addr, 7, &creply));
        for o in back {
            match o {
                ProxyOut::Client(_) => client_replies += 1,
                ProxyOut::Coord {
                    msg: CoordMsg::CompleteIntent { intent },
                    ..
                } => {
                    assert_eq!(intent, 99);
                    completes += 1;
                }
                _ => {}
            }
        }
    }
    assert_eq!(client_replies, 1, "exactly one merged commit reply");
    assert_eq!(completes, 1);
}

#[test]
fn name_hashing_spreads_creates_across_dir_sites() {
    let mut c = cfg();
    c.name_policy = ProxyNamePolicy::NameHashing;
    let mut u = Uproxy::new(c.clone());
    let root = Fhandle::root();
    let mut seen = FxHashSet::default();
    for i in 0..32 {
        let req = NfsRequest::Create {
            dir: root,
            name: format!("file{i}"),
            attr: Sattr3::default(),
        };
        let out = u.outbound(t(i), call_pkt(&c, 100 + i as u32, &req));
        seen.insert(net_pkts(&out)[0].dst);
    }
    assert_eq!(
        seen.len(),
        c.dir_sites.len(),
        "hashing must use every dir site"
    );
}

#[test]
fn mkdir_switching_routes_by_home_and_redirects() {
    let mut c = cfg();
    c.name_policy = ProxyNamePolicy::MkdirSwitching { redirect_millis: 0 };
    let mut u = Uproxy::new(c.clone());
    let root = Fhandle::root();
    // p = 0: every mkdir goes to the parent home site.
    for i in 0..16 {
        let req = NfsRequest::Mkdir {
            dir: root,
            name: format!("d{i}"),
            attr: Sattr3::default(),
        };
        let out = u.outbound(t(i), call_pkt(&c, i as u32, &req));
        assert_eq!(net_pkts(&out)[0].dst, c.dir_sites[0]);
    }
    // p = 1: every mkdir is redirected by hash — both sites appear.
    c.name_policy = ProxyNamePolicy::MkdirSwitching {
        redirect_millis: 1000,
    };
    let mut u = Uproxy::new(c.clone());
    let mut seen = FxHashSet::default();
    for i in 0..32 {
        let req = NfsRequest::Mkdir {
            dir: root,
            name: format!("r{i}"),
            attr: Sattr3::default(),
        };
        let out = u.outbound(t(i), call_pkt(&c, i as u32, &req));
        seen.insert(net_pkts(&out)[0].dst);
    }
    assert_eq!(seen.len(), 2, "full redirect must spread mkdirs");
}

#[test]
fn lookup_routes_by_policy() {
    // Mkdir switching: lookups follow the parent's home site.
    let mut c = cfg();
    c.name_policy = ProxyNamePolicy::MkdirSwitching { redirect_millis: 0 };
    let mut u = Uproxy::new(c.clone());
    let dir_on_1 = Fhandle::new(77, 1, slice_nfsproto::FH_FLAG_DIR, 0, 0);
    let req = NfsRequest::Lookup {
        dir: dir_on_1,
        name: "x".into(),
    };
    let out = u.outbound(t(0), call_pkt(&c, 1, &req));
    assert_eq!(net_pkts(&out)[0].dst, c.dir_sites[1]);
}

#[test]
fn state_loss_is_tolerated() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let req = NfsRequest::Getattr { fh: fh(1, 0) };
    let out = u.outbound(t(0), call_pkt(&c, 77, &req));
    let dest = net_pkts(&out)[0].dst;
    u.lose_state();
    // The reply still reaches the client with the virtual source, so the
    // client's RPC layer can pair it after retransmission.
    let reply = NfsReply::ok(
        NfsProc::Getattr,
        Fattr3::new(FileType::Regular, 1, 0o644, NfsTime::default()),
    );
    let back = u.inbound(t(1), reply_pkt(dest, c.client_addr, 77, &reply));
    match &back[0] {
        ProxyOut::Client(p) => {
            assert_eq!(p.src, c.virtual_addr);
            assert!(p.verify());
        }
        o => panic!("unexpected {o:?}"),
    }
}

#[test]
fn block_map_routing_parks_and_releases() {
    let mut c = cfg();
    c.use_block_maps = true;
    let mut u = Uproxy::new(c.clone());
    let mapped = Fhandle::new(90, 0, slice_nfsproto::FH_FLAG_MAPPED, 0, 0);
    let req = NfsRequest::Read {
        fh: mapped,
        offset: 128 * 1024,
        count: 32768,
    };
    let out = u.outbound(t(0), call_pkt(&c, 3, &req));
    assert!(net_pkts(&out).is_empty(), "request parks on the map fetch");
    let mapget = out.iter().find_map(|o| match o {
        ProxyOut::Coord {
            msg:
                CoordMsg::MapGet {
                    file,
                    first_block,
                    count,
                },
            ..
        } => Some((*file, *first_block, *count)),
        _ => None,
    });
    let (file, first, count) = mapget.expect("MapGet emitted");
    assert_eq!(file, 90);
    // Fragment arrives: the parked read is released to the mapped site.
    let sites: Vec<Vec<u32>> = (0..count).map(|_| vec![2u32]).collect();
    let warming = vec![Vec::new(); sites.len()];
    let out = u.coord_reply(
        t(1),
        CoordReply::MapFragment {
            file,
            first_block: first,
            sites,
            warming,
        },
    );
    let pkts = net_pkts(&out);
    assert_eq!(pkts.len(), 1);
    assert_eq!(pkts[0].dst, c.storage_sites[2]);
    // Next read on a covered block routes immediately.
    let req = NfsRequest::Read {
        fh: mapped,
        offset: 192 * 1024,
        count: 32768,
    };
    let out = u.outbound(t(2), call_pkt(&c, 4, &req));
    assert_eq!(net_pkts(&out).len(), 1);
}

#[test]
fn tick_writes_back_stale_attrs() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let f = fh(70, 0);
    let out = u.outbound(
        t(0),
        call_pkt(
            &c,
            1,
            &NfsRequest::Write {
                fh: f,
                offset: 100 * 1024,
                stable: StableHow::Unstable,
                data: vec![0u8; 1024],
            },
        ),
    );
    let sdst = net_pkts(&out)[0].dst;
    let reply = NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            70,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Write {
            count: 1024,
            committed: StableHow::Unstable,
            verf: 1,
        },
    };
    u.inbound(t(1), reply_pkt(sdst, c.client_addr, 1, &reply));
    assert!(u.tick(t(100)).is_empty(), "too early for write-back");
    let out = u.tick(t(10_000));
    assert_eq!(net_pkts(&out).len(), 1, "stale dirty attrs pushed back");
    assert!(c.dir_sites.contains(&net_pkts(&out)[0].dst));
}

#[test]
fn phase_stats_accumulate() {
    let mut c = cfg();
    c.measure_phases = true;
    let mut u = Uproxy::new(c.clone());
    for i in 0..50u32 {
        let req = NfsRequest::Lookup {
            dir: Fhandle::root(),
            name: format!("n{i}"),
        };
        u.outbound(t(u64::from(i)), call_pkt(&c, i, &req));
    }
    let ph = u.phase_stats();
    assert_eq!(ph.packets, 50);
    assert!(ph.decode_ns > 0, "decode must be measured");
}

#[test]
fn straddling_write_splits_and_merges() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    // 32 KB write at 48 KB: 16 KB belongs below the threshold, 16 KB above.
    let req = NfsRequest::Write {
        fh: fh(80, 0),
        offset: 48 * 1024,
        stable: StableHow::FileSync,
        data: vec![0x9u8; 32 * 1024],
    };
    let out = u.outbound(t(0), call_pkt(&c, 11, &req));
    let pkts: Vec<Packet> = net_pkts(&out).into_iter().cloned().collect();
    assert_eq!(pkts.len(), 2, "one half per side of the threshold");
    let low = pkts
        .iter()
        .find(|p| c.sf_sites.contains(&p.dst))
        .expect("sf half");
    let high = pkts
        .iter()
        .find(|p| c.storage_sites.contains(&p.dst))
        .expect("storage half");
    let (_, low_req) = slice_nfsproto::decode_call(&low.payload).unwrap();
    let (_, high_req) = slice_nfsproto::decode_call(&high.payload).unwrap();
    match (low_req, high_req) {
        (
            NfsRequest::Write {
                offset: lo,
                data: ld,
                ..
            },
            NfsRequest::Write {
                offset: ho,
                data: hd,
                ..
            },
        ) => {
            assert_eq!(lo, 48 * 1024);
            assert_eq!(ld.len(), 16 * 1024);
            assert_eq!(ho, 64 * 1024);
            assert_eq!(hd.len(), 16 * 1024);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Replies from both halves merge into one write reply with the full
    // byte count.
    let half_reply = |count| NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            80,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Write {
            count,
            committed: StableHow::FileSync,
            verf: 3,
        },
    };
    let r1 = u.inbound(
        t(1),
        reply_pkt(low.dst, c.client_addr, 11, &half_reply(16 * 1024)),
    );
    assert!(r1.iter().all(|o| !matches!(o, ProxyOut::Client(_))));
    let r2 = u.inbound(
        t(2),
        reply_pkt(high.dst, c.client_addr, 11, &half_reply(16 * 1024)),
    );
    let merged = r2
        .iter()
        .find_map(|o| match o {
            ProxyOut::Client(p) => Some(p),
            _ => None,
        })
        .expect("merged reply");
    assert!(merged.verify());
    let (_, reply) = decode_reply(&merged.payload, NfsProc::Write).unwrap();
    match reply.body {
        ReplyBody::Write { count, .. } => assert_eq!(count, 32 * 1024, "full count reported"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn straddling_read_splits_and_reassembles() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    let f = fh(81, 0);
    // Teach the attr cache the file size via a write covering the range.
    let w = NfsRequest::Write {
        fh: f,
        offset: 48 * 1024,
        stable: StableHow::FileSync,
        data: vec![0u8; 32 * 1024],
    };
    let wout = u.outbound(t(0), call_pkt(&c, 20, &w));
    let wpkts: Vec<Packet> = net_pkts(&wout).into_iter().cloned().collect();
    let half_wreply = NfsReply {
        proc: NfsProc::Write,
        status: NfsStatus::Ok,
        attr: Some(Fattr3::new(
            FileType::Regular,
            81,
            0o644,
            NfsTime::default(),
        )),
        body: ReplyBody::Write {
            count: 16 * 1024,
            committed: StableHow::FileSync,
            verf: 1,
        },
    };
    for p in &wpkts {
        u.inbound(t(1), reply_pkt(p.dst, c.client_addr, 20, &half_wreply));
    }
    // Now a straddling read: the halves return distinct patterns and the
    // client must see them joined in order.
    let r = NfsRequest::Read {
        fh: f,
        offset: 48 * 1024,
        count: 32 * 1024,
    };
    let out = u.outbound(t(2), call_pkt(&c, 21, &r));
    let pkts: Vec<Packet> = net_pkts(&out).into_iter().cloned().collect();
    assert_eq!(pkts.len(), 2);
    let mut final_out = Vec::new();
    for p in &pkts {
        let is_low = c.sf_sites.contains(&p.dst);
        let data = if is_low {
            vec![0xAA; 16 * 1024]
        } else {
            vec![0xBB; 16 * 1024]
        };
        let reply = NfsReply {
            proc: NfsProc::Read,
            status: NfsStatus::Ok,
            attr: Some(Fattr3::new(
                FileType::Regular,
                81,
                0o644,
                NfsTime::default(),
            )),
            body: ReplyBody::Read { data, eof: false },
        };
        final_out = u.inbound(t(3), reply_pkt(p.dst, c.client_addr, 21, &reply));
    }
    let merged = final_out
        .iter()
        .find_map(|o| match o {
            ProxyOut::Client(p) => Some(p),
            _ => None,
        })
        .expect("merged read");
    assert!(merged.verify());
    let (_, reply) = decode_reply(&merged.payload, NfsProc::Read).unwrap();
    match reply.body {
        ReplyBody::Read { data, .. } => {
            assert_eq!(data.len(), 32 * 1024);
            assert!(
                data[..16 * 1024].iter().all(|&b| b == 0xAA),
                "low half first"
            );
            assert!(
                data[16 * 1024..].iter().all(|&b| b == 0xBB),
                "high half second"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn warming_replica_stays_out_of_read_rotation_until_epoch_flush() {
    let mut c = cfg();
    c.use_block_maps = true;
    let mut u = Uproxy::new(c.clone());
    let mapped = Fhandle::new(91, 0, slice_nfsproto::FH_FLAG_MAPPED, 0, 0);
    let read_at = |off: u64| NfsRequest::Read {
        fh: mapped,
        offset: off,
        count: 32768,
    };
    // Park the first read, then answer with a fragment whose entries all
    // mirror on sites {2, 3} with 3 still warming (migration copy owed).
    let out = u.outbound(t(0), call_pkt(&c, 1, &read_at(128 * 1024)));
    assert!(net_pkts(&out).is_empty());
    let (file, first, count) = out
        .iter()
        .find_map(|o| match o {
            ProxyOut::Coord {
                msg:
                    CoordMsg::MapGet {
                        file,
                        first_block,
                        count,
                    },
                ..
            } => Some((*file, *first_block, *count)),
            _ => None,
        })
        .expect("MapGet emitted");
    let fragment = |warm: bool| CoordReply::MapFragment {
        file,
        first_block: first,
        sites: (0..count).map(|_| vec![2u32, 3u32]).collect(),
        warming: (0..count)
            .map(|_| if warm { vec![3u32] } else { Vec::new() })
            .collect(),
    };
    let out = u.coord_reply(t(1), fragment(true));
    assert_eq!(net_pkts(&out)[0].dst, c.storage_sites[2]);
    // Every covered stripe reads from site 2: 3 is warming.
    for b in 0..u64::from(count) {
        let out = u.outbound(
            t(2 + b),
            call_pkt(&c, 10 + b as u32, &read_at((first + b) * 64 * 1024)),
        );
        for p in net_pkts(&out) {
            assert_ne!(
                p.dst, c.storage_sites[3],
                "warming replica must not serve reads"
            );
        }
    }
    // The log drains; the epoch flush refetches a clean fragment and the
    // rotation picks the new replica back up.
    u.flush_map_cache();
    assert_eq!(u.map_epoch(), 1);
    let out = u.outbound(t(100), call_pkt(&c, 40, &read_at(128 * 1024)));
    assert!(net_pkts(&out).is_empty(), "flush forces a refetch");
    u.coord_reply(t(101), fragment(false));
    let mut hit3 = false;
    for b in 0..u64::from(count) {
        let out = u.outbound(
            t(102 + b),
            call_pkt(&c, 50 + b as u32, &read_at((first + b) * 64 * 1024)),
        );
        hit3 |= net_pkts(&out).iter().any(|p| p.dst == c.storage_sites[3]);
    }
    assert!(hit3, "clean replica rejoins the rotation after the flush");
}

#[test]
fn retire_site_purges_suspicion_and_leaves_probe_loop() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    // Drive site 1 into suspicion: route a mirrored read there, then
    // strike it past the threshold via retransmissions.
    let mirrored = fh(40, FH_FLAG_MIRRORED);
    let mut victim = None;
    for (xid, off) in (0u32..8).map(|i| (i + 1, u64::from(i) * 64 * 1024)) {
        let out = u.outbound(
            t(u64::from(xid)),
            call_pkt(
                &c,
                xid,
                &NfsRequest::Read {
                    fh: mirrored,
                    offset: off,
                    count: 1024,
                },
            ),
        );
        if net_pkts(&out).first().map(|p| p.dst) == Some(c.storage_sites[1]) {
            u.note_retransmit(t(100), xid);
            u.note_retransmit(t(200), xid);
            victim = Some(xid);
            break;
        }
    }
    assert!(victim.is_some(), "some stripe must route to site 1");
    assert_eq!(u.suspected_sites(), vec![1]);
    assert!(!u.tick(t(3000)).is_empty(), "suspected sites are probed");
    // Planned removal: suspicion soft state is purged for good and the
    // probe loop drops the site.
    u.retire_site(t(4000), 1);
    assert!(u.suspected_sites().is_empty(), "retire purges suspicion");
    assert_eq!(u.retired_sites(), vec![1]);
    assert!(u.tick(t(6000)).is_empty(), "retired sites are never probed");
    // Reads never route to the retired site again.
    for (xid, off) in (20u32..40).map(|i| (i, u64::from(i) * 64 * 1024)) {
        let out = u.outbound(
            t(10_000 + u64::from(xid)),
            call_pkt(
                &c,
                xid,
                &NfsRequest::Read {
                    fh: mirrored,
                    offset: off,
                    count: 1024,
                },
            ),
        );
        for p in net_pkts(&out) {
            assert_ne!(p.dst, c.storage_sites[1], "retired site must not serve");
        }
    }
}

#[test]
fn hot_trackers_count_and_age_out() {
    let c = cfg();
    let mut u = Uproxy::new(c.clone());
    // Three data ops on file 7, one on file 8, plus name traffic on dir 3.
    for i in 0..3u64 {
        u.outbound(
            t(i),
            call_pkt(
                &c,
                i as u32 + 1,
                &NfsRequest::Read {
                    fh: fh(7, 0),
                    offset: 128 * 1024,
                    count: 1024,
                },
            ),
        );
    }
    u.outbound(
        t(5),
        call_pkt(
            &c,
            9,
            &NfsRequest::Read {
                fh: fh(8, 0),
                offset: 128 * 1024,
                count: 1024,
            },
        ),
    );
    u.outbound(
        t(6),
        call_pkt(
            &c,
            10,
            &NfsRequest::Lookup {
                dir: fh(3, slice_nfsproto::FH_FLAG_DIR),
                name: "x".into(),
            },
        ),
    );
    assert_eq!(u.hot_files(1), vec![(7, 3), (8, 1)]);
    assert_eq!(u.hot_files(2), vec![(7, 3)]);
    assert_eq!(u.hot_dirs(1), vec![(3, 1)]);
    // A quiet gap of two half-windows ages everything out; fresh traffic
    // starts a new window.
    u.outbound(
        t(60_000),
        call_pkt(
            &c,
            11,
            &NfsRequest::Read {
                fh: fh(9, 0),
                offset: 128 * 1024,
                count: 1024,
            },
        ),
    );
    assert_eq!(u.hot_files(1), vec![(9, 1)], "stale window must age out");
}
