//! The Slice µproxy: interposed request routing for NFS.
//!
//! This crate is the paper's central contribution — a small packet filter
//! interposed on each client's network path that virtualizes the NFS
//! protocol: it decodes intercepted request packets, applies configurable
//! routing policies (threshold-split I/O, static and map-driven striping,
//! mirrored striping, mkdir switching, name hashing), rewrites addresses
//! and selected payload fields with incremental checksum repair, and keeps
//! bounded soft state (pending-request records, routing tables, a block-map
//! cache, and an attribute cache with write-back).
//!
//! * [`tables`] — compact logical→physical routing tables;
//! * [`attrcache`] — the attribute cache (§4.1);
//! * [`proxy`] — the packet filter state machine with per-phase cost
//!   accounting (Table 3).

pub mod attrcache;
pub mod proxy;
pub mod tables;

pub use attrcache::{AttrCache, CachedAttr};
pub use proxy::{PhaseStats, ProxyConfig, ProxyNamePolicy, ProxyOut, Uproxy};
pub use tables::RoutingTable;

#[cfg(test)]
mod tests;
