//! µproxy routing tables: compact logical-to-physical indirection.
//!
//! "The µproxy directs most requests by extracting relevant fields from
//! the request, perhaps hashing to combine multiple fields, and
//! interpreting the result as a logical server site ID ... It then looks
//! up the corresponding physical server in a compact routing table.
//! Multiple logical sites may map to the same physical server, leaving
//! flexibility for reconfiguration. The routing tables constitute soft
//! state; the mapping is determined externally" (paper §3).

use slice_hashes::bucket_of;

/// A compact routing table mapping logical server slots to physical
/// server indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    slots: Vec<u32>,
    generation: u64,
}

impl RoutingTable {
    /// An identity-ish table: `logical_slots` slots spread round-robin
    /// over `physical` servers.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn balanced(logical_slots: usize, physical: u32) -> Self {
        assert!(logical_slots > 0, "need at least one logical slot");
        assert!(physical > 0, "need at least one physical server");
        RoutingTable {
            slots: (0..logical_slots).map(|i| i as u32 % physical).collect(),
            generation: 1,
        }
    }

    /// Builds a table from explicit slot assignments.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn from_slots(slots: Vec<u32>, generation: u64) -> Self {
        assert!(!slots.is_empty(), "need at least one logical slot");
        RoutingTable { slots, generation }
    }

    /// Number of logical slots (the rebalancing granularity).
    pub fn logical_slots(&self) -> usize {
        self.slots.len()
    }

    /// Table generation, bumped on reconfiguration.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Routes a 64-bit key: hash to a logical slot, then indirect to the
    /// physical server.
    pub fn route(&self, key: u64) -> u32 {
        self.slots[bucket_of(key, self.slots.len())]
    }

    /// Routes an already-known logical slot id (e.g. a home-site id
    /// stamped in a file handle).
    pub fn route_logical(&self, logical: u32) -> u32 {
        self.slots[logical as usize % self.slots.len()]
    }

    /// Rebalances the logical slots over `new_physical` servers moving as
    /// few slots as possible (the 1/N data movement of paper §3.3.1):
    /// slots are taken only from servers above their fair share and handed
    /// to servers below it. Returns the slots moved.
    pub fn rebalance(&mut self, new_physical: u32) -> Vec<usize> {
        let n = self.slots.len();
        let base = n / new_physical as usize;
        let extra = n % new_physical as usize;
        let target = |p: u32| base + usize::from((p as usize) < extra);
        let mut counts = vec![0usize; new_physical as usize];
        for slot in &mut self.slots {
            if *slot >= new_physical {
                *slot = u32::MAX; // server departed: must move
            } else {
                counts[*slot as usize] += 1;
            }
        }
        let mut moved = Vec::new();
        for i in 0..n {
            let s = self.slots[i];
            let over = s == u32::MAX || counts[s as usize] > target(s);
            if !over {
                continue;
            }
            // Find an underloaded destination.
            if let Some(dest) = (0..new_physical).find(|&p| counts[p as usize] < target(p)) {
                if s != u32::MAX {
                    counts[s as usize] -= 1;
                }
                counts[dest as usize] += 1;
                self.slots[i] = dest;
                moved.push(i);
            }
        }
        self.generation += 1;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_covers_all_physical() {
        let t = RoutingTable::balanced(64, 4);
        let mut seen = [false; 4];
        for k in 0..1000u64 {
            seen[t.route(k.wrapping_mul(0x9e3779b97f4a7c15)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn route_is_stable() {
        let t = RoutingTable::balanced(64, 4);
        assert_eq!(t.route(12345), t.route(12345));
    }

    #[test]
    fn rebalance_moves_bounded_fraction() {
        // Growing 4 -> 5 servers should move roughly 1/5 of the slots.
        let mut t = RoutingTable::balanced(100, 4);
        let moved = t.rebalance(5);
        assert!(!moved.is_empty());
        assert!(moved.len() <= 45, "moved {} slots of 100", moved.len());
        assert_eq!(t.generation(), 2);
        // All five servers now receive traffic.
        let mut seen = [false; 5];
        for k in 0..2000u64 {
            seen[t.route(k.wrapping_mul(0x2545f4914f6cdd1d)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn route_logical_wraps() {
        let t = RoutingTable::balanced(8, 3);
        assert_eq!(t.route_logical(9), t.route_logical(1));
    }

    #[test]
    #[should_panic(expected = "at least one logical slot")]
    fn empty_table_rejected() {
        RoutingTable::from_slots(vec![], 1);
    }
}
