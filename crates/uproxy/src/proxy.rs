//! The µproxy: an interposed request-routing packet filter.
//!
//! The µproxy "intercepts NFS requests addressed to virtual NFS servers,
//! and routes the request to a physical server by applying a function to
//! the request type and arguments. It then rewrites the IP address and
//! port to redirect the request to the selected server. When a response
//! arrives, the µproxy rewrites the source address and port before
//! forwarding it to the client" (paper §3). It is a nonblocking state
//! machine whose soft state consists of pending-request records, routing
//! tables, a block-map cache, and an attribute cache; it may initiate and
//! absorb packets (attribute write-backs, coordinator intentions) and is
//! free to lose its state — end-to-end RPC retransmission recovers.
//!
//! Per-packet work is accounted in four phases matching the paper's
//! Table 3: interception, decode, redirect/rewrite, and soft-state
//! maintenance; [`Uproxy::phase_stats`] reports real measured CPU
//! nanoseconds per phase.

use slice_sim::FxHashMap;
use std::time::Instant;

use slice_hashes::{fnv1a, name_fingerprint};
use slice_nfsproto::{
    decode_call, decode_reply, encode_call, AuthUnix, Fhandle, NfsProc, NfsRequest, NfsStatus,
    NfsTime, Packet, Sattr3, SetTime, SockAddr, REPLY_ATTR_OFFSET,
};
use slice_sim::{SimDuration, SimTime};
use slice_storage::{CoordMsg, CoordReply, IntentKind};
use slice_xdr::XdrEncoder;

use crate::attrcache::AttrCache;
use crate::tables::RoutingTable;

mod coded;
use coded::{CodedLegRole, CodedOp};

/// Name-space routing policy at the µproxy (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyNamePolicy {
    /// Route to the parent's home site; redirect mkdirs with probability
    /// `redirect_millis / 1000`.
    MkdirSwitching {
        /// Redirect probability in thousandths (p × 1000).
        redirect_millis: u32,
    },
    /// Route every name operation by the MD5 fingerprint of
    /// `(parent fh, name)`.
    NameHashing,
}

/// µproxy configuration: the ensemble map and the routing policies.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// The virtual NFS server address clients mount.
    pub virtual_addr: SockAddr,
    /// This client's address (source for µproxy-initiated packets).
    pub client_addr: SockAddr,
    /// Directory server addresses by physical index.
    pub dir_sites: Vec<SockAddr>,
    /// Small-file server addresses (empty disables the threshold split).
    pub sf_sites: Vec<SockAddr>,
    /// Storage node addresses by physical index.
    pub storage_sites: Vec<SockAddr>,
    /// Number of block-service coordinators (typed channel, not packets).
    pub coord_sites: u32,
    /// Name-space policy.
    pub name_policy: ProxyNamePolicy,
    /// The threshold offset (64 KB in the prototype).
    pub threshold: u64,
    /// Stripe unit for static placement.
    pub stripe_unit: u64,
    /// Replication degree for mirrored files.
    pub mirror_copies: u32,
    /// Erasure-coded layout `(n, k)` for mapped files' bulk regions.
    /// `None` keeps the mirrored/striped layouts. Requires
    /// [`ProxyConfig::use_block_maps`] and a coordinator running the same
    /// coded default placement.
    pub coded: Option<(u32, u32)>,
    /// Route bulk I/O through coordinator block maps instead of the
    /// static placement function.
    pub use_block_maps: bool,
    /// Wrap multisite commits in coordinator intentions.
    pub use_intents: bool,
    /// Attribute cache capacity (entries).
    pub attr_cache_entries: usize,
    /// Dirty attributes older than this are pushed back on
    /// [`Uproxy::tick`].
    pub writeback_interval: SimDuration,
    /// Retransmission strikes before a storage site is suspected down
    /// and removed from the mirrored-read rotation.
    pub suspect_after: u32,
    /// Interval between liveness probes of a suspected site (also the
    /// probe retry deadline when a coordinator does not answer).
    pub probe_interval: SimDuration,
    /// Sliding window for hot-set detection: per-file data-op and
    /// per-directory name-op counts are kept over roughly the last
    /// window (two half-window buckets).
    pub hot_window: SimDuration,
    /// Measure real per-phase CPU cost with `Instant::now` (Table 3
    /// benchmarking). Off by default: wall-clock reads are nondeterminism
    /// smuggled into an otherwise seeded simulation, and they cost two
    /// syscall-ish timer reads per phase on the packet path. When off,
    /// [`Uproxy::phase_stats`] reports zeros.
    pub measure_phases: bool,
}

impl ProxyConfig {
    /// A small single-client test configuration.
    pub fn test_default() -> Self {
        ProxyConfig {
            virtual_addr: SockAddr::new(0x0a00_00ff, 2049),
            client_addr: SockAddr::new(0x0a00_0001, 700),
            dir_sites: vec![SockAddr::new(0x0a00_1000, 2049)],
            sf_sites: vec![SockAddr::new(0x0a00_2000, 2049)],
            storage_sites: vec![
                SockAddr::new(0x0a00_3000, 2049),
                SockAddr::new(0x0a00_3001, 2049),
            ],
            coord_sites: 1,
            name_policy: ProxyNamePolicy::MkdirSwitching { redirect_millis: 0 },
            threshold: 64 * 1024,
            stripe_unit: 64 * 1024,
            mirror_copies: 2,
            coded: None,
            use_block_maps: false,
            use_intents: true,
            attr_cache_entries: 4096,
            writeback_interval: SimDuration::from_secs(3),
            suspect_after: 2,
            probe_interval: SimDuration::from_secs(2),
            hot_window: SimDuration::from_secs(10),
            measure_phases: false,
        }
    }
}

/// Outputs of a µproxy step, dispatched by the host.
#[derive(Debug, Clone)]
pub enum ProxyOut {
    /// Forward a (rewritten) packet into the network.
    Net(Packet),
    /// Deliver a (rewritten) packet up to the local client stack.
    Client(Packet),
    /// Send a typed message to a block-service coordinator.
    Coord {
        /// Coordinator index.
        site: u32,
        /// The message.
        msg: CoordMsg,
    },
    /// A directory server bounced a request as misdirected: the routing
    /// table is stale and must be refreshed from an external source
    /// (paper §3.3.1 — tables are hints loaded lazily).
    NeedDirTable,
    /// An availability event for the host's trace stream (suspicion,
    /// failover, degraded writes).
    Trace(slice_obs::EventKind),
}

/// Per-storage-site failure-suspicion state (slice-ha). Suspicion is
/// raised locally from observed retransmissions but cleared only by a
/// coordinator-verified probe: a site that looks alive to the µproxy may
/// still hold dirty regions that would satisfy reads with stale bytes.
#[derive(Debug, Clone)]
struct SiteHealth {
    /// Consecutive unanswered-retransmission strikes.
    strikes: u32,
    /// Removed from the mirrored-read rotation while set.
    suspected: bool,
    /// Next time a liveness probe may be issued for this site.
    probe_at: SimTime,
    /// Coordinator probe votes still outstanding.
    awaiting_votes: u32,
    /// Coordinator probe votes that answered "clean".
    clean_votes: u32,
}

impl SiteHealth {
    fn new() -> Self {
        SiteHealth {
            strikes: 0,
            suspected: false,
            probe_at: SimTime::ZERO,
            awaiting_votes: 0,
            clean_votes: 0,
        }
    }
}

/// Sliding-window operation counter over two half-window buckets: the
/// reported count for an id is its total over the current and previous
/// half windows, so the view always spans between one and two half
/// windows of history with O(1) roll-over cost.
#[derive(Debug)]
struct HotTracker {
    half: SimDuration,
    epoch_start: SimTime,
    cur: FxHashMap<u64, u64>,
    prev: FxHashMap<u64, u64>,
}

impl HotTracker {
    fn new(window: SimDuration) -> Self {
        HotTracker {
            half: SimDuration::from_nanos((window.as_nanos() / 2).max(1)),
            epoch_start: SimTime::ZERO,
            cur: FxHashMap::default(),
            prev: FxHashMap::default(),
        }
    }

    fn roll(&mut self, now: SimTime) {
        if now < self.epoch_start + self.half {
            return;
        }
        if now >= self.epoch_start + self.half + self.half {
            // Idle gap longer than the window: both buckets are stale.
            self.cur.clear();
            self.prev.clear();
            self.epoch_start = now;
            return;
        }
        self.prev = std::mem::take(&mut self.cur);
        self.epoch_start += self.half;
    }

    fn note(&mut self, now: SimTime, id: u64) {
        self.roll(now);
        *self.cur.entry(id).or_insert(0) += 1;
    }

    /// Ids with at least `min` ops in the window, hottest first (count
    /// descending, id ascending — deterministic).
    fn hot(&self, min: u64) -> Vec<(u64, u64)> {
        let mut merged: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (&id, &n) in self.prev.iter().chain(self.cur.iter()) {
            *merged.entry(id).or_insert(0) += n;
        }
        let mut out: Vec<(u64, u64)> = merged.into_iter().filter(|&(_, n)| n >= min).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    fn entries(&self) -> usize {
        self.cur.len() + self.prev.len()
    }
}

/// A mirrored write parked while the coordinator logs its missed mirror
/// ranges: (original packet, live sites, missed sites, byte count).
type ParkedWrite = (Packet, Vec<u32>, Vec<u32>, u64);

/// Which server class a pending request was routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Dir,
    SmallFile,
    Storage,
}

/// Reassembly state for requests the µproxy split at the threshold
/// offset (one part served below the threshold, one above).
#[derive(Debug, Clone)]
enum MergeState {
    /// A split write: the merged reply must report the full byte count.
    Write { total: u32 },
    /// A split read: data halves arrive separately and are reassembled.
    Read {
        split: u64,
        low: Option<Vec<u8>>,
        high: Option<Vec<u8>>,
    },
}

/// Interner for the 24-byte file handles stashed per pending request:
/// in-flight requests overwhelmingly target a small working set of files,
/// so each distinct handle is stored once and pending records carry a
/// 4-byte index.
#[derive(Debug, Default)]
struct FhInterner {
    ids: FxHashMap<Fhandle, u32>,
    handles: Vec<Fhandle>,
}

impl FhInterner {
    fn intern(&mut self, fh: &Fhandle) -> u32 {
        if let Some(&id) = self.ids.get(fh) {
            return id;
        }
        let id = self.handles.len() as u32;
        self.handles.push(*fh);
        self.ids.insert(*fh, id);
        id
    }

    fn get(&self, id: u32) -> Fhandle {
        self.handles[id as usize]
    }

    fn len(&self) -> usize {
        self.handles.len()
    }
}

#[derive(Debug, Clone)]
struct PendingReq {
    proc: NfsProc,
    /// Interned handle id (see [`FhInterner`]), not the handle itself.
    fh: Option<u32>,
    offset: u64,
    len: u32,
    class: Class,
    remaining: u32,
    absorb: bool,
    client_src: SockAddr,
    intent: Option<(u32, u64)>,
    /// Storage site indices still owed a reply for this request; a
    /// client retransmission strikes exactly these sites.
    awaiting: Vec<u32>,
    merge: Option<MergeState>,
    /// (file, attr version) for µproxy-initiated attribute write-backs:
    /// the entry is cleaned only when this push is acknowledged.
    push: Option<(u64, u64)>,
    /// Set on internal legs of an erasure-coded op: (parent xid, role).
    coded: Option<(u32, CodedLegRole)>,
}

/// Real-time cost accounting for the four µproxy phases (Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Packet interception nanoseconds.
    pub intercept_ns: u64,
    /// Packet decode nanoseconds.
    pub decode_ns: u64,
    /// Redirection/rewriting nanoseconds.
    pub rewrite_ns: u64,
    /// Soft-state maintenance nanoseconds.
    pub soft_ns: u64,
    /// Packets processed (requests + responses).
    pub packets: u64,
}

impl PhaseStats {
    /// Accumulates another measurement (all fields are sums).
    pub fn absorb(&mut self, other: &PhaseStats) {
        self.intercept_ns += other.intercept_ns;
        self.decode_ns += other.decode_ns;
        self.rewrite_ns += other.rewrite_ns;
        self.soft_ns += other.soft_ns;
        self.packets += other.packets;
    }
}

/// The µproxy state machine.
#[derive(Debug)]
pub struct Uproxy {
    cfg: ProxyConfig,
    dir_table: RoutingTable,
    sf_table: RoutingTable,
    pending: FxHashMap<u32, PendingReq>,
    /// Interned file handles referenced by pending records.
    fhs: FhInterner,
    attrs: AttrCache,
    /// Cached block-map fragments: (file, block) -> replica sites.
    map_cache: FxHashMap<(u64, u64), Vec<u32>>,
    /// Replicas still owed a resync/migration copy per the coordinator's
    /// last fragment: writes fan out to them, reads skip them until the
    /// log drains (and the next epoch flush refetches the fragment).
    warming_cache: FxHashMap<(u64, u64), Vec<u32>>,
    /// Requests parked on a block-map fetch, keyed by (file, block).
    map_waiters: FxHashMap<(u64, u64), Vec<Packet>>,
    /// Commit packets parked on an intent ack, keyed by xid.
    intent_waiters: FxHashMap<u64, Packet>,
    /// Failure-suspicion table, one entry per storage site.
    health: Vec<SiteHealth>,
    /// Sites removed by a planned drain: never routed to, never struck,
    /// never probed — their suspicion soft state is purged for good.
    retired: Vec<bool>,
    /// Routing-table epoch: bumped on every reconfiguration flush so
    /// observers can tell when new block-map entries took effect.
    map_epoch: u64,
    /// Per-file data-op counts over a sliding window (hot-set detection).
    hot_data: HotTracker,
    /// Per-directory name-op counts over a sliding window.
    hot_name: HotTracker,
    /// Mirrored writes parked on a coordinator dirty-region ack.
    degrade_pending: FxHashMap<u32, ParkedWrite>,
    /// Writes cleared to proceed at reduced redundancy: xid -> live
    /// replica set approved by the coordinator's DirtyAck.
    degrade_ok: FxHashMap<u32, Vec<u32>>,
    /// Suspicion transitions `(when, site, suspected)` for benchmarks.
    suspicion_log: Vec<(SimTime, u32, bool)>,
    /// Erasure-coded ops in flight, keyed by the client's (parent) xid.
    coded_ops: FxHashMap<u32, CodedOp>,
    /// Per-(file, stripe) exclusive locks held by coded ops that gather
    /// and decode (read-modify-write serialization).
    stripe_locks: FxHashMap<(u64, u64), u32>,
    /// Coded requests parked on a stripe lock, in arrival order.
    coded_waiters: Vec<((u64, u64), Packet)>,
    mirror_rr: u64,
    next_own_xid: u32,
    cred: AuthUnix,
    phases: PhaseStats,
    stale_table_bounces: u64,
    requests_routed: u64,
    replies_routed: u64,
    absorbed: u64,
    initiated: u64,
    read_failovers: u64,
    degraded_writes: u64,
    degraded_bytes: u64,
    probes_sent: u64,
    coded_reads: u64,
    coded_writes: u64,
    ec_degraded_reads: u64,
    ec_reconstructions: u64,
    ec_reconstructed_bytes: u64,
}

impl Uproxy {
    /// Creates a µproxy from `cfg`.
    pub fn new(cfg: ProxyConfig) -> Self {
        let dirs = cfg.dir_sites.len().max(1) as u32;
        let sfs = cfg.sf_sites.len().max(1) as u32;
        Uproxy {
            dir_table: RoutingTable::balanced(64, dirs),
            sf_table: RoutingTable::balanced(64, sfs),
            pending: FxHashMap::default(),
            fhs: FhInterner::default(),
            attrs: AttrCache::new(cfg.attr_cache_entries),
            map_cache: FxHashMap::default(),
            warming_cache: FxHashMap::default(),
            map_waiters: FxHashMap::default(),
            intent_waiters: FxHashMap::default(),
            health: (0..cfg.storage_sites.len())
                .map(|_| SiteHealth::new())
                .collect(),
            retired: vec![false; cfg.storage_sites.len()],
            map_epoch: 0,
            hot_data: HotTracker::new(cfg.hot_window),
            hot_name: HotTracker::new(cfg.hot_window),
            degrade_pending: FxHashMap::default(),
            degrade_ok: FxHashMap::default(),
            suspicion_log: Vec::new(),
            coded_ops: FxHashMap::default(),
            stripe_locks: FxHashMap::default(),
            coded_waiters: Vec::new(),
            mirror_rr: 0,
            next_own_xid: 0x8000_0000,
            cred: AuthUnix {
                machine: "uproxy".into(),
                ..Default::default()
            },
            phases: PhaseStats::default(),
            stale_table_bounces: 0,
            requests_routed: 0,
            replies_routed: 0,
            absorbed: 0,
            initiated: 0,
            read_failovers: 0,
            degraded_writes: 0,
            degraded_bytes: 0,
            probes_sent: 0,
            coded_reads: 0,
            coded_writes: 0,
            ec_degraded_reads: 0,
            ec_reconstructions: 0,
            ec_reconstructed_bytes: 0,
            cfg,
        }
    }

    /// Measured per-phase CPU cost (Table 3). All-zero durations unless
    /// [`ProxyConfig::measure_phases`] is set.
    pub fn phase_stats(&self) -> PhaseStats {
        self.phases
    }

    /// This µproxy's configuration (read-only; placement parameters are
    /// needed by external auditors like the `slice-check` oracles).
    pub fn config(&self) -> &ProxyConfig {
        &self.cfg
    }

    /// Starts a phase timer, or `None` when phase measurement is off.
    #[inline]
    fn phase_start(&self) -> Option<Instant> {
        self.cfg.measure_phases.then(Instant::now)
    }

    /// Nanoseconds since a phase timer started (0 when measurement is
    /// off).
    #[inline]
    fn elapsed_ns(t: Option<Instant>) -> u64 {
        t.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }

    /// Nanoseconds between two phase marks (0 when measurement is off).
    #[inline]
    fn between_ns(a: Option<Instant>, b: Option<Instant>) -> u64 {
        match (a, b) {
            (Some(a), Some(b)) => (b - a).as_nanos() as u64,
            _ => 0,
        }
    }

    /// (requests routed, replies routed, absorbed, initiated).
    pub fn traffic_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.requests_routed,
            self.replies_routed,
            self.absorbed,
            self.initiated,
        )
    }

    /// Folds this µproxy's counters into `reg` under `prefix` (e.g.
    /// `"client.0.uproxy"`). Uses absolute (`set`) semantics so repeated
    /// folds are idempotent. Phase nanoseconds are zeros unless
    /// [`ProxyConfig::measure_phases`] is on.
    pub fn export_metrics(&self, prefix: &str, reg: &mut slice_obs::Registry) {
        let set = |reg: &mut slice_obs::Registry, k: &str, v: u64| {
            reg.set(&format!("{prefix}.{k}"), v);
        };
        set(reg, "requests_routed", self.requests_routed);
        set(reg, "replies_routed", self.replies_routed);
        set(reg, "absorbed", self.absorbed);
        set(reg, "initiated", self.initiated);
        set(reg, "stale_table_bounces", self.stale_table_bounces);
        let (hits, misses) = self.attrs.stats();
        set(reg, "attr_cache.hits", hits);
        set(reg, "attr_cache.misses", misses);
        set(reg, "attr_cache.entries", self.attrs.len() as u64);
        set(reg, "attr_cache.push_retries", self.attrs.push_retries());
        set(
            reg,
            "ha.suspected_sites",
            self.suspected_sites().len() as u64,
        );
        set(reg, "ha.read_failovers", self.read_failovers);
        set(reg, "ha.degraded_writes", self.degraded_writes);
        set(reg, "ha.degraded_bytes", self.degraded_bytes);
        set(reg, "ha.probes_sent", self.probes_sent);
        set(reg, "ec.coded_reads", self.coded_reads);
        set(reg, "ec.coded_writes", self.coded_writes);
        set(reg, "ec.degraded_reads", self.ec_degraded_reads);
        set(reg, "ec.reconstructions", self.ec_reconstructions);
        set(reg, "ec.reconstructed_bytes", self.ec_reconstructed_bytes);
        set(reg, "soft_state.entries", self.soft_state_entries() as u64);
        set(reg, "soft_state.interned_fhs", self.fhs.len() as u64);
        set(reg, "reconf.map_epoch", self.map_epoch);
        set(
            reg,
            "reconf.retired_sites",
            self.retired_sites().len() as u64,
        );
        set(
            reg,
            "reconf.hot_tracked",
            (self.hot_data.entries() + self.hot_name.entries()) as u64,
        );
        set(reg, "phase.packets", self.phases.packets);
        set(reg, "phase.intercept_ns", self.phases.intercept_ns);
        set(reg, "phase.decode_ns", self.phases.decode_ns);
        set(reg, "phase.rewrite_ns", self.phases.rewrite_ns);
        set(reg, "phase.soft_ns", self.phases.soft_ns);
    }

    /// Attribute-cache (hits, misses) since creation.
    pub fn attr_cache_stats(&self) -> (u64, u64) {
        self.attrs.stats()
    }

    /// Current attributes the µproxy would report for `file`.
    pub fn cached_attr(&mut self, file: u64) -> Option<slice_nfsproto::Fattr3> {
        self.attrs.get(file)
    }

    /// True while any cached attribute awaits a write-back
    /// acknowledgement — the periodic tick must keep running.
    pub fn has_dirty_attrs(&self) -> bool {
        self.attrs.has_dirty()
    }

    /// Audit snapshot of the attribute cache `(file, dirty, cached size)`
    /// for the `slice-check` structural oracles.
    pub fn audit_attr_cache(&self) -> Vec<(u64, bool, u64)> {
        self.attrs.audit()
    }

    /// Attribute pushes re-issued because an earlier push of the same
    /// version went unacknowledged — retransmissions performed by the
    /// interposed layer rather than the client's RPC machinery.
    pub fn push_retries(&self) -> u64 {
        self.attrs.push_retries()
    }

    /// Replaces the directory routing table (reconfiguration, §3.3.1).
    pub fn load_dir_table(&mut self, table: RoutingTable) {
        self.dir_table = table;
    }

    /// Misdirected-request bounces observed (stale-table detections).
    pub fn stale_table_bounces(&self) -> u64 {
        self.stale_table_bounces
    }

    /// The directory table's current generation.
    pub fn dir_table_generation(&self) -> u64 {
        self.dir_table.generation()
    }

    /// Replaces the small-file routing table.
    pub fn load_sf_table(&mut self, table: RoutingTable) {
        self.sf_table = table;
    }

    /// Drops all soft state (the µproxy is "free to discard its state ...
    /// without compromising correctness").
    pub fn lose_state(&mut self) {
        self.pending.clear();
        self.attrs.clear();
        self.map_cache.clear();
        self.warming_cache.clear();
        self.map_waiters.clear();
        self.intent_waiters.clear();
        self.degrade_pending.clear();
        self.degrade_ok.clear();
        self.coded_ops.clear();
        self.stripe_locks.clear();
        self.coded_waiters.clear();
        // Suspicion is a hint; rebuilt from observed retransmissions.
        for h in &mut self.health {
            *h = SiteHealth::new();
        }
        // Hot-set counters are observations; rebuilt from traffic.
        self.hot_data = HotTracker::new(self.cfg.hot_window);
        self.hot_name = HotTracker::new(self.cfg.hot_window);
        // `retired` survives: like the routing tables it is loaded from
        // the reconfiguration plane, not inferred from traffic.
    }

    /// Removes a drained site from every routing decision: it is never
    /// read from, written to, struck, or probed again, and its suspicion
    /// soft state is purged (a retired node never returns, so keeping
    /// the entry would leak it forever).
    pub fn retire_site(&mut self, now: SimTime, site: u32) {
        let Some(flag) = self.retired.get_mut(site as usize) else {
            return;
        };
        *flag = true;
        let h = &mut self.health[site as usize];
        if h.suspected {
            self.suspicion_log.push((now, site, false));
        }
        *h = SiteHealth::new();
    }

    /// Sites retired by a planned drain, sorted.
    pub fn retired_sites(&self) -> Vec<u32> {
        self.retired
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Drops every cached block-map fragment and bumps the routing
    /// epoch: the next bulk I/O re-fetches fresh entries from the
    /// coordinators, picking up reconfigured (widened/rebalanced)
    /// replica sets. The paper's tables-are-hints rule makes this safe
    /// at any time.
    pub fn flush_map_cache(&mut self) {
        self.map_cache.clear();
        self.warming_cache.clear();
        self.map_epoch += 1;
    }

    /// Routing-table epoch (count of reconfiguration flushes).
    pub fn map_epoch(&self) -> u64 {
        self.map_epoch
    }

    /// Files with at least `min` data operations over the sliding hot
    /// window, hottest first.
    pub fn hot_files(&self, min: u64) -> Vec<(u64, u64)> {
        self.hot_data.hot(min)
    }

    /// Directories with at least `min` name operations over the sliding
    /// hot window, hottest first.
    pub fn hot_dirs(&self, min: u64) -> Vec<(u64, u64)> {
        self.hot_name.hot(min)
    }

    /// Storage sites currently suspected down.
    pub fn suspected_sites(&self) -> Vec<u32> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.suspected)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Suspicion transitions `(when, site, suspected)` since creation.
    pub fn suspicion_log(&self) -> &[(SimTime, u32, bool)] {
        &self.suspicion_log
    }

    /// (coded reads, coded writes, degraded reads, reconstructions,
    /// reconstructed bytes) for the erasure-coded layout.
    pub fn ec_stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.coded_reads,
            self.coded_writes,
            self.ec_degraded_reads,
            self.ec_reconstructions,
            self.ec_reconstructed_bytes,
        )
    }

    /// Total soft-state entries currently held (pending requests, block-map
    /// fragments, cached attributes, parked packets, coded ops): the
    /// µproxy's live working-set size for capacity benchmarks.
    pub fn soft_state_entries(&self) -> usize {
        self.pending.len()
            + self.map_cache.len()
            + self.warming_cache.len()
            + self.attrs.len()
            + self.map_waiters.values().map(Vec::len).sum::<usize>()
            + self.intent_waiters.len()
            + self.degrade_pending.len()
            + self.degrade_ok.len()
            + self.coded_ops.len()
            + self.coded_waiters.len()
            + self.stripe_locks.len()
    }

    /// (read failovers, degraded writes, degraded bytes, probes sent).
    pub fn ha_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.read_failovers,
            self.degraded_writes,
            self.degraded_bytes,
            self.probes_sent,
        )
    }

    /// Notes a client RPC retransmission of `xid`: every storage site
    /// still owed a reply takes a suspicion strike (the paper's client
    /// retransmissions are the µproxy's only failure signal — it sees
    /// all of them, being interposed on the packet path).
    pub fn note_retransmit(&mut self, now: SimTime, xid: u32) -> Vec<ProxyOut> {
        let mut out = Vec::new();
        // A coded op's storage legs carry internal xids; the client only
        // retransmits the parent, so strike the legs' sites here.
        if let Some(op) = self.coded_ops.get(&xid) {
            for site in op.awaiting.clone() {
                self.strike(now, &mut out, site);
            }
            return out;
        }
        let awaiting = match self.pending.get(&xid) {
            Some(r) if r.class == Class::Storage => r.awaiting.clone(),
            _ => return out,
        };
        for site in awaiting {
            self.strike(now, &mut out, site);
        }
        out
    }

    fn strike(&mut self, now: SimTime, out: &mut Vec<ProxyOut>, site: u32) {
        if self.retired.get(site as usize).copied().unwrap_or(false) {
            return;
        }
        let Some(h) = self.health.get_mut(site as usize) else {
            return;
        };
        h.strikes += 1;
        if !h.suspected && h.strikes >= self.cfg.suspect_after {
            h.suspected = true;
            h.probe_at = now + self.cfg.probe_interval;
            h.awaiting_votes = 0;
            self.suspicion_log.push((now, site, true));
            out.push(ProxyOut::Trace(slice_obs::EventKind::SiteSuspected {
                site: site as usize,
            }));
        }
    }

    /// Splits a replica set into (live, suspected). All-suspected sets
    /// come back whole: with no live mirror there is nothing to degrade
    /// to, and routing everywhere keeps retransmissions probing.
    fn partition_live(&self, sites: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut live = Vec::new();
        let mut missed = Vec::new();
        for &s in sites {
            if self.site_retired(s) || self.health.get(s as usize).is_some_and(|h| h.suspected) {
                missed.push(s);
            } else {
                live.push(s);
            }
        }
        if live.is_empty() {
            // Retired sites stay excluded even from the all-suspected
            // fallback: they hold no data and never answer.
            let present: Vec<u32> = sites
                .iter()
                .copied()
                .filter(|&s| !self.site_retired(s))
                .collect();
            if present.is_empty() {
                (sites.to_vec(), Vec::new())
            } else {
                (present, Vec::new())
            }
        } else {
            (live, missed)
        }
    }

    fn site_retired(&self, site: u32) -> bool {
        self.retired.get(site as usize).copied().unwrap_or(false)
    }

    /// Degraded-write gate. A mirrored write whose replica set includes
    /// suspected sites must not complete before the coordinator has
    /// durably logged the skipped mirror's (file, range): otherwise a
    /// crash forgets which regions diverged and resync cannot restore
    /// redundancy. Returns the replica set to fan out to, or `None` when
    /// the packet was parked awaiting the coordinator's `DirtyAck`.
    #[allow(clippy::too_many_arguments)]
    fn degrade_gate(
        &mut self,
        out: &mut Vec<ProxyOut>,
        pkt: &Packet,
        xid: u32,
        file: u64,
        offset: u64,
        len: u64,
        sites: Vec<u32>,
    ) -> Option<Vec<u32>> {
        if let Some(live) = self.degrade_ok.get(&xid) {
            return Some(live.clone());
        }
        let (live, missed) = self.partition_live(&sites);
        if missed.is_empty() || self.cfg.coord_sites == 0 {
            return Some(sites);
        }
        self.degrade_pending
            .insert(xid, (pkt.clone(), live.clone(), missed.clone(), len));
        out.push(ProxyOut::Coord {
            site: self.coord_site(file),
            msg: CoordMsg::MarkDirty {
                op_id: u64::from(xid),
                obj: file,
                offset,
                len,
                missed,
                sources: live,
            },
        });
        None
    }

    fn dir_dest(&self, logical: u32) -> SockAddr {
        self.cfg.dir_sites
            [self.dir_table.route_logical(logical) as usize % self.cfg.dir_sites.len()]
    }

    fn dir_dest_key(&self, key: u64) -> SockAddr {
        self.cfg.dir_sites[self.dir_table.route(key) as usize % self.cfg.dir_sites.len()]
    }

    fn sf_dest(&self, file: u64) -> SockAddr {
        let key = fnv1a(&file.to_le_bytes());
        self.cfg.sf_sites[self.sf_table.route(key) as usize % self.cfg.sf_sites.len()]
    }

    /// Static striping/placement function: replica site list for one
    /// stripe of a file (must agree with the coordinator's map policy).
    fn static_sites(&self, file: u64, offset: u64, mirrored: bool) -> Vec<u32> {
        let n = self.cfg.storage_sites.len() as u64;
        let base = fnv1a(&file.to_le_bytes()) % n;
        let stripe = offset / self.cfg.stripe_unit;
        let first = ((base + stripe % n) % n) as u32;
        if mirrored {
            (0..self.cfg.mirror_copies.min(n as u32))
                .map(|c| (first + c) % n as u32)
                .collect()
        } else {
            vec![first]
        }
    }

    /// Resolves the storage sites for a bulk I/O request, consulting the
    /// block-map cache when dynamic placement is enabled. `None` means the
    /// request must wait for a map fragment (a `MapGet` was emitted).
    fn storage_sites_for(
        &mut self,
        out: &mut Vec<ProxyOut>,
        fh: &Fhandle,
        offset: u64,
    ) -> Option<Vec<u32>> {
        let file = fh.file_id();
        if self.cfg.use_block_maps && fh.is_mapped() {
            let block = offset / self.cfg.stripe_unit;
            if let Some(sites) = self.map_cache.get(&(file, block)) {
                return Some(sites.clone());
            }
            // Fetch a fragment of 16 blocks around the miss.
            let first = block - block % 16;
            out.push(ProxyOut::Coord {
                site: (fnv1a(&file.to_le_bytes()) % u64::from(self.cfg.coord_sites.max(1))) as u32,
                msg: CoordMsg::MapGet {
                    file,
                    first_block: first,
                    count: 16,
                },
            });
            return None;
        }
        Some(self.static_sites(file, offset, fh.is_mirrored()))
    }

    fn coord_site(&self, file: u64) -> u32 {
        (fnv1a(&file.to_le_bytes()) % u64::from(self.cfg.coord_sites.max(1))) as u32
    }

    fn nfs_time(now: SimTime) -> NfsTime {
        NfsTime::from_nanos(now.as_nanos())
    }

    /// Generates an attribute write-back: a µproxy-initiated SETATTR to
    /// the directory server (absorbed on reply).
    fn push_attrs(&mut self, out: &mut Vec<ProxyOut>, entry: &crate::attrcache::CachedAttr) {
        let req = NfsRequest::Setattr {
            fh: entry.fh,
            attr: Sattr3 {
                size: Some(entry.attr.size),
                atime: SetTime::Client(entry.attr.atime),
                mtime: SetTime::Client(entry.attr.mtime),
                ..Default::default()
            },
        };
        let xid = self.next_own_xid;
        self.next_own_xid = self.next_own_xid.wrapping_add(1);
        let payload = encode_call(xid, &self.cred, &req);
        let dest = self.dir_dest(entry.fh.home_site());
        let pkt = Packet::new(self.cfg.client_addr, dest, payload);
        let fhid = self.fhs.intern(&entry.fh);
        self.pending.insert(
            xid,
            PendingReq {
                proc: NfsProc::Setattr,
                fh: Some(fhid),
                offset: 0,
                len: 0,
                class: Class::Dir,
                remaining: 1,
                absorb: true,
                client_src: self.cfg.client_addr,
                intent: None,
                awaiting: Vec::new(),
                merge: None,
                push: Some((entry.fh.file_id(), entry.version)),
                coded: None,
            },
        );
        self.initiated += 1;
        out.push(ProxyOut::Net(pkt));
    }

    /// Processes a client-to-server packet.
    pub fn outbound(&mut self, now: SimTime, pkt: Packet) -> Vec<ProxyOut> {
        let mut out = Vec::new();
        // Phase 1: interception.
        let t0 = self.phase_start();
        self.phases.packets += 1;
        if pkt.dst != self.cfg.virtual_addr {
            self.phases.intercept_ns += Self::elapsed_ns(t0);
            out.push(ProxyOut::Net(pkt));
            return out;
        }
        let t1 = self.phase_start();
        self.phases.intercept_ns += Self::between_ns(t0, t1);
        // Phase 2: decode.
        let decoded = decode_call(&pkt.payload);
        let t2 = self.phase_start();
        self.phases.decode_ns += Self::between_ns(t1, t2);
        let Ok((hdr, req)) = decoded else {
            // Undecodable packet: drop; RPC retransmission recovers.
            return out;
        };
        self.route_call(now, &mut out, pkt, hdr.xid, req);
        out
    }

    fn route_call(
        &mut self,
        now: SimTime,
        out: &mut Vec<ProxyOut>,
        pkt: Packet,
        xid: u32,
        req: NfsRequest,
    ) {
        self.requests_routed += 1;
        // Hot-set tracking for demand-driven replication: data ops count
        // against the file, name ops against the parent directory.
        match &req {
            NfsRequest::Read { fh, .. } | NfsRequest::Write { fh, .. } => {
                self.hot_data.note(now, fh.file_id());
            }
            NfsRequest::Lookup { dir, .. }
            | NfsRequest::Create { dir, .. }
            | NfsRequest::Mkdir { dir, .. }
            | NfsRequest::Remove { dir, .. }
            | NfsRequest::Rmdir { dir, .. } => {
                self.hot_name.note(now, dir.file_id());
            }
            _ => {}
        }
        let client_src = pkt.src;
        // Phase 4 pieces are timed inside; phase 3 around the rewrites.
        match &req {
            // Erasure-coded layouts intercept all bulk (and straddling)
            // I/O on mapped files: the µproxy stripes it into shard legs.
            NfsRequest::Read { fh, offset, count }
                if self.coded_geom(fh).is_some()
                    && self.coded_touches_bulk(*offset, u64::from(*count)) =>
            {
                let (fh, offset, count) = (*fh, *offset, *count);
                let t4 = self.phase_start();
                self.coded_read(now, out, pkt, xid, fh, offset, count);
                self.phases.soft_ns += Self::elapsed_ns(t4);
            }
            NfsRequest::Write {
                fh,
                offset,
                data,
                stable,
            } if self.coded_geom(fh).is_some()
                && self.coded_touches_bulk(*offset, data.len() as u64) =>
            {
                let (fh, offset, stable) = (*fh, *offset, *stable);
                let data = data.clone();
                let t4 = self.phase_start();
                self.coded_write(now, out, pkt, xid, fh, offset, data, stable);
                self.phases.soft_ns += Self::elapsed_ns(t4);
            }
            // I/O that straddles the threshold offset is split: the head
            // belongs to a small-file server, the tail to the storage
            // array. The halves share the xid; replies are reassembled.
            NfsRequest::Read { fh, offset, count }
                if self.straddles(fh, *offset, u64::from(*count)) =>
            {
                let split = self.cfg.threshold;
                let low = NfsRequest::Read {
                    fh: *fh,
                    offset: *offset,
                    count: (split - offset) as u32,
                };
                let high_len = (offset + u64::from(*count) - split) as u32;
                let high = NfsRequest::Read {
                    fh: *fh,
                    offset: split,
                    count: high_len,
                };
                let t_soft = self.phase_start();
                let sites = self.storage_sites_for(out, fh, split);
                self.phases.soft_ns += Self::elapsed_ns(t_soft);
                let Some(sites) = sites else {
                    let block = split / self.cfg.stripe_unit;
                    self.map_waiters
                        .entry((fh.file_id(), block))
                        .or_default()
                        .push(pkt);
                    return;
                };
                let site = self.pick_read_site(out, fh.file_id(), &sites, split, xid);
                let t3 = self.phase_start();
                let low_pkt = Packet::new(
                    client_src,
                    self.sf_dest(fh.file_id()),
                    encode_call(xid, &self.cred, &low),
                );
                let high_pkt = Packet::new(
                    client_src,
                    self.cfg.storage_sites[site as usize],
                    encode_call(xid, &self.cred, &high),
                );
                self.phases.rewrite_ns += Self::elapsed_ns(t3);
                self.initiated += 2;
                out.push(ProxyOut::Net(low_pkt));
                out.push(ProxyOut::Net(high_pkt));
                let t4 = self.phase_start();
                let fhid = self.fhs.intern(fh);
                self.pending.insert(
                    xid,
                    PendingReq {
                        proc: NfsProc::Read,
                        fh: Some(fhid),
                        offset: *offset,
                        len: *count,
                        class: Class::Storage,
                        remaining: 2,
                        absorb: false,
                        client_src,
                        intent: None,
                        awaiting: vec![site],
                        merge: Some(MergeState::Read {
                            split,
                            low: None,
                            high: None,
                        }),
                        push: None,
                        coded: None,
                    },
                );
                self.phases.soft_ns += Self::elapsed_ns(t4);
            }
            NfsRequest::Write {
                fh,
                offset,
                data,
                stable,
            } if self.straddles(fh, *offset, data.len() as u64) => {
                let split = self.cfg.threshold;
                let cut = (split - offset) as usize;
                let low = NfsRequest::Write {
                    fh: *fh,
                    offset: *offset,
                    stable: *stable,
                    data: data[..cut].to_vec(),
                };
                let high = NfsRequest::Write {
                    fh: *fh,
                    offset: split,
                    stable: *stable,
                    data: data[cut..].to_vec(),
                };
                let t_soft = self.phase_start();
                let sites = self.storage_sites_for(out, fh, split);
                self.phases.soft_ns += Self::elapsed_ns(t_soft);
                let Some(sites) = sites else {
                    let block = split / self.cfg.stripe_unit;
                    self.map_waiters
                        .entry((fh.file_id(), block))
                        .or_default()
                        .push(pkt);
                    return;
                };
                let high_len = (data.len() - cut) as u64;
                let Some(sites) =
                    self.degrade_gate(out, &pkt, xid, fh.file_id(), split, high_len, sites)
                else {
                    return;
                };
                let t3 = self.phase_start();
                let low_pkt = Packet::new(
                    client_src,
                    self.sf_dest(fh.file_id()),
                    encode_call(xid, &self.cred, &low),
                );
                out.push(ProxyOut::Net(low_pkt));
                for site in &sites {
                    let p = Packet::new(
                        client_src,
                        self.cfg.storage_sites[*site as usize],
                        encode_call(xid, &self.cred, &high),
                    );
                    out.push(ProxyOut::Net(p));
                }
                self.phases.rewrite_ns += Self::elapsed_ns(t3);
                self.initiated += 1 + sites.len() as u64;
                let t4 = self.phase_start();
                let fhid = self.fhs.intern(fh);
                self.pending.insert(
                    xid,
                    PendingReq {
                        proc: NfsProc::Write,
                        fh: Some(fhid),
                        offset: *offset,
                        len: data.len() as u32,
                        class: Class::Storage,
                        remaining: 1 + sites.len() as u32,
                        absorb: false,
                        client_src,
                        intent: None,
                        awaiting: sites.clone(),
                        merge: Some(MergeState::Write {
                            total: data.len() as u32,
                        }),
                        push: None,
                        coded: None,
                    },
                );
                self.phases.soft_ns += Self::elapsed_ns(t4);
            }
            NfsRequest::Read { fh, offset, count } if self.is_bulk(fh, *offset) => {
                let t_soft = self.phase_start();
                let sites = self.storage_sites_for(out, fh, *offset);
                self.phases.soft_ns += Self::elapsed_ns(t_soft);
                let Some(sites) = sites else {
                    let block = *offset / self.cfg.stripe_unit;
                    self.map_waiters
                        .entry((fh.file_id(), block))
                        .or_default()
                        .push(pkt);
                    return;
                };
                // Mirrored reads alternate between the mirrors to balance
                // load: replica choice flips every full placement rotation,
                // so each node serves half of the blocks it stores and the
                // rest of its prefetched data goes unused (Table 2).
                let site = self.pick_read_site(out, fh.file_id(), &sites, *offset, xid);
                let t3 = self.phase_start();
                let mut p = pkt;
                p.rewrite_dst(self.cfg.storage_sites[site as usize]);
                self.phases.rewrite_ns += Self::elapsed_ns(t3);
                let t4 = self.phase_start();
                let fhid = self.fhs.intern(fh);
                self.pending.insert(
                    xid,
                    PendingReq {
                        proc: NfsProc::Read,
                        fh: Some(fhid),
                        offset: *offset,
                        len: *count,
                        class: Class::Storage,
                        remaining: 1,
                        absorb: false,
                        client_src,
                        intent: None,
                        awaiting: vec![site],
                        merge: None,
                        push: None,
                        coded: None,
                    },
                );
                self.phases.soft_ns += Self::elapsed_ns(t4);
                out.push(ProxyOut::Net(p));
            }
            NfsRequest::Write {
                fh, offset, data, ..
            } if self.is_bulk(fh, *offset) => {
                let t_soft = self.phase_start();
                let sites = self.storage_sites_for(out, fh, *offset);
                self.phases.soft_ns += Self::elapsed_ns(t_soft);
                let Some(sites) = sites else {
                    let block = *offset / self.cfg.stripe_unit;
                    self.map_waiters
                        .entry((fh.file_id(), block))
                        .or_default()
                        .push(pkt);
                    return;
                };
                let Some(sites) = self.degrade_gate(
                    out,
                    &pkt,
                    xid,
                    fh.file_id(),
                    *offset,
                    data.len() as u64,
                    sites,
                ) else {
                    return;
                };
                let t3 = self.phase_start();
                // Mirrored writes go to every replica (µproxy duplicates
                // the packet).
                for site in &sites {
                    let mut p = pkt.clone();
                    p.rewrite_dst(self.cfg.storage_sites[*site as usize]);
                    out.push(ProxyOut::Net(p));
                }
                self.phases.rewrite_ns += Self::elapsed_ns(t3);
                let t4 = self.phase_start();
                let fhid = self.fhs.intern(fh);
                self.pending.insert(
                    xid,
                    PendingReq {
                        proc: NfsProc::Write,
                        fh: Some(fhid),
                        offset: *offset,
                        len: data.len() as u32,
                        class: Class::Storage,
                        remaining: sites.len() as u32,
                        absorb: false,
                        client_src,
                        intent: None,
                        awaiting: sites.clone(),
                        merge: None,
                        push: None,
                        coded: None,
                    },
                );
                self.phases.soft_ns += Self::elapsed_ns(t4);
            }
            NfsRequest::Commit { fh, .. } if self.commit_is_multisite(fh) => {
                // Push modified attributes back on commit (paper §4.1).
                let t4 = self.phase_start();
                let dirty = self.attrs.take_dirty(fh.file_id());
                self.phases.soft_ns += Self::elapsed_ns(t4);
                if let Some(e) = dirty {
                    self.push_attrs(out, &e);
                }
                if self.cfg.use_intents && self.cfg.coord_sites > 0 {
                    // Intention first; the commit fans out on the ack.
                    let site = self.coord_site(fh.file_id());
                    self.intent_waiters.insert(u64::from(xid), pkt);
                    out.push(ProxyOut::Coord {
                        site,
                        msg: CoordMsg::BeginIntent {
                            op_id: u64::from(xid),
                            kind: IntentKind::Commit { obj: fh.file_id() },
                            participants: (0..self.cfg.storage_sites.len() as u32).collect(),
                        },
                    });
                } else {
                    self.fanout_commit(out, pkt, xid, *fh, None);
                }
            }
            other => {
                // Name-space, attribute, and small-file traffic.
                let dest = self.name_dest(other);
                let (class, fh, offset, len) = match other {
                    NfsRequest::Read { fh, offset, count } => {
                        (Class::SmallFile, Some(*fh), *offset, *count)
                    }
                    NfsRequest::Write {
                        fh, offset, data, ..
                    } => (Class::SmallFile, Some(*fh), *offset, data.len() as u32),
                    NfsRequest::Commit { fh, .. } => (Class::SmallFile, Some(*fh), 0, 0),
                    req => (Class::Dir, req.primary_fh().copied(), 0, 0),
                };
                // Commit below threshold still flushes cached attributes.
                if matches!(other, NfsRequest::Commit { .. }) {
                    let t4 = self.phase_start();
                    let dirty = fh.and_then(|f| self.attrs.take_dirty(f.file_id()));
                    self.phases.soft_ns += Self::elapsed_ns(t4);
                    if let Some(e) = dirty {
                        self.push_attrs(out, &e);
                    }
                }
                let t3 = self.phase_start();
                let mut p = pkt;
                p.rewrite_dst(dest);
                self.phases.rewrite_ns += Self::elapsed_ns(t3);
                let t4 = self.phase_start();
                let fhid = fh.map(|f| self.fhs.intern(&f));
                self.pending.insert(
                    xid,
                    PendingReq {
                        proc: other.proc(),
                        fh: fhid,
                        offset,
                        len,
                        class,
                        remaining: 1,
                        absorb: false,
                        client_src,
                        intent: None,
                        awaiting: Vec::new(),
                        merge: None,
                        push: None,
                        coded: None,
                    },
                );
                self.phases.soft_ns += Self::elapsed_ns(t4);
                out.push(ProxyOut::Net(p));
            }
        }
    }

    fn is_bulk(&self, fh: &Fhandle, offset: u64) -> bool {
        if fh.is_dir() || fh.is_symlink() {
            return false;
        }
        self.cfg.sf_sites.is_empty() || offset >= self.cfg.threshold
    }

    /// True when an I/O range crosses the threshold offset and therefore
    /// spans the small-file/bulk split.
    fn straddles(&self, fh: &Fhandle, offset: u64, len: u64) -> bool {
        !self.cfg.sf_sites.is_empty()
            && !fh.is_dir()
            && !fh.is_symlink()
            && offset < self.cfg.threshold
            && offset + len > self.cfg.threshold
    }

    /// Replica choice for a mirrored read: alternate between the mirrors
    /// by placement rotation (each node serves half of what it stores).
    /// Suspected sites are skipped — the read fails over to the first
    /// live mirror instead of stalling through the suspected site's
    /// retransmission timeouts. Warming replicas (a migration or resync
    /// copy still owed per the coordinator's fragment) are skipped too:
    /// a freshly pinned replica joins the rotation only after the log
    /// drains and an epoch flush refetches the fragment.
    fn pick_read_site(
        &mut self,
        out: &mut Vec<ProxyOut>,
        file: u64,
        sites: &[u32],
        offset: u64,
        xid: u32,
    ) -> u32 {
        let block = offset / self.cfg.stripe_unit;
        let warming = self
            .warming_cache
            .get(&(file, block))
            .cloned()
            .unwrap_or_default();
        let idx = if sites.len() > 1 {
            let stripe = offset / self.cfg.stripe_unit;
            let rotation = stripe / self.cfg.storage_sites.len() as u64;
            self.mirror_rr += 1;
            (rotation % sites.len() as u64) as usize
        } else {
            0
        };
        let preferred = sites[idx];
        if !self.health[preferred as usize].suspected
            && !self.site_retired(preferred)
            && !warming.contains(&preferred)
        {
            return preferred;
        }
        for k in 1..sites.len() {
            let cand = sites[(idx + k) % sites.len()];
            if !self.health[cand as usize].suspected
                && !self.site_retired(cand)
                && !warming.contains(&cand)
            {
                self.read_failovers += 1;
                out.push(ProxyOut::Trace(slice_obs::EventKind::ReadFailover {
                    site: preferred as usize,
                    xid: u64::from(xid),
                }));
                return cand;
            }
        }
        // Every mirror suspected: route to the rotation choice anyway so
        // retransmissions keep exercising (and eventually clearing) it.
        preferred
    }

    /// A commit is multisite when the file plausibly has data on storage
    /// nodes (cached size above the threshold, or no small-file servers).
    fn commit_is_multisite(&mut self, fh: &Fhandle) -> bool {
        if self.cfg.sf_sites.is_empty() {
            return true;
        }
        match self.attrs.get(fh.file_id()) {
            Some(a) => a.size > self.cfg.threshold,
            None => false,
        }
    }

    fn fanout_commit(
        &mut self,
        out: &mut Vec<ProxyOut>,
        pkt: Packet,
        xid: u32,
        fh: Fhandle,
        intent: Option<(u32, u64)>,
    ) {
        let client_src = pkt.src;
        let mut n = 0;
        let mut awaiting = Vec::new();
        // Suspected sites are skipped: a commit fan-out that includes a
        // crashed node would never complete. Any unstable data a merely
        // slow (not crashed) site holds stays unstable until a later
        // commit — the register model treats it as optional.
        let any_live = self
            .health
            .iter()
            .enumerate()
            .any(|(i, h)| !h.suspected && !self.retired[i]);
        for (i, site) in self.cfg.storage_sites.iter().enumerate() {
            if self.retired[i] || (any_live && self.health[i].suspected) {
                continue;
            }
            let mut p = pkt.clone();
            p.rewrite_dst(*site);
            out.push(ProxyOut::Net(p));
            awaiting.push(i as u32);
            n += 1;
        }
        // The below-threshold region commits at its small-file server.
        if !self.cfg.sf_sites.is_empty() {
            let mut p = pkt.clone();
            p.rewrite_dst(self.sf_dest(fh.file_id()));
            out.push(ProxyOut::Net(p));
            n += 1;
        }
        let fhid = self.fhs.intern(&fh);
        self.pending.insert(
            xid,
            PendingReq {
                proc: NfsProc::Commit,
                fh: Some(fhid),
                offset: 0,
                len: 0,
                class: Class::Storage,
                remaining: n,
                absorb: false,
                client_src,
                intent,
                awaiting,
                merge: None,
                push: None,
                coded: None,
            },
        );
    }

    /// Destination for non-bulk requests per the name-space policy.
    fn name_dest(&self, req: &NfsRequest) -> SockAddr {
        match req {
            NfsRequest::Read { fh, .. }
            | NfsRequest::Write { fh, .. }
            | NfsRequest::Commit { fh, .. } => self.sf_dest(fh.file_id()),
            NfsRequest::Getattr { fh }
            | NfsRequest::Setattr { fh, .. }
            | NfsRequest::Access { fh, .. }
            | NfsRequest::Readlink { fh }
            | NfsRequest::Fsstat { fh } => self.dir_dest(fh.home_site()),
            NfsRequest::Lookup { dir, name }
            | NfsRequest::Create { dir, name, .. }
            | NfsRequest::Symlink { dir, name, .. }
            | NfsRequest::Remove { dir, name }
            | NfsRequest::Rmdir { dir, name }
            | NfsRequest::Link { dir, name, .. } => self.name_pair_dest(dir, name),
            NfsRequest::Mkdir { dir, name, .. } => match self.cfg.name_policy {
                ProxyNamePolicy::MkdirSwitching { redirect_millis } => {
                    let fp = name_fingerprint(&dir.0, name.as_bytes());
                    // Deterministic pseudo-random redirect decision drawn
                    // from fingerprint bits.
                    if ((fp >> 48) % 1000) < u64::from(redirect_millis) {
                        self.cfg.dir_sites
                            [self.dir_table.route(fp) as usize % self.cfg.dir_sites.len()]
                    } else {
                        self.dir_dest(dir.home_site())
                    }
                }
                ProxyNamePolicy::NameHashing => self.name_pair_dest(dir, name),
            },
            NfsRequest::Rename {
                from_dir,
                from_name,
                ..
            } => self.name_pair_dest(from_dir, from_name),
            NfsRequest::Readdir { dir, cookie, .. }
            | NfsRequest::Readdirplus { dir, cookie, .. } => match self.cfg.name_policy {
                ProxyNamePolicy::MkdirSwitching { .. } => self.dir_dest(dir.home_site()),
                ProxyNamePolicy::NameHashing => self.dir_dest_site_index((cookie >> 56) as u32),
            },
            NfsRequest::Null => self.cfg.dir_sites[0],
        }
    }

    fn dir_dest_site_index(&self, idx: u32) -> SockAddr {
        self.cfg.dir_sites[idx as usize % self.cfg.dir_sites.len()]
    }

    fn name_pair_dest(&self, dir: &Fhandle, name: &str) -> SockAddr {
        match self.cfg.name_policy {
            ProxyNamePolicy::MkdirSwitching { .. } => self.dir_dest(dir.home_site()),
            ProxyNamePolicy::NameHashing => {
                self.dir_dest_key(name_fingerprint(&dir.0, name.as_bytes()))
            }
        }
    }

    /// Processes a server-to-client packet.
    pub fn inbound(&mut self, now: SimTime, pkt: Packet) -> Vec<ProxyOut> {
        let mut out = Vec::new();
        // Phase 1: interception — pair the reply with its pending record.
        let t0 = self.phase_start();
        self.phases.packets += 1;
        let xid = slice_nfsproto::peek_xid_type(&pkt.payload)
            .map(|(x, _)| x)
            .ok();
        // Only `proc` and `coded` are needed before the record is
        // re-fetched below; cloning the whole record here would deep-copy
        // its awaiting list and any stashed split-read data per reply.
        let pending = xid.and_then(|x| self.pending.get(&x).map(|r| (r.proc, r.coded)));
        let t1 = self.phase_start();
        self.phases.intercept_ns += Self::between_ns(t0, t1);
        let Some(xid) = xid else {
            out.push(ProxyOut::Client(pkt));
            return out;
        };
        let Some((rec_proc, rec_coded)) = pending else {
            // Lost soft state: restore the virtual source so the client's
            // RPC layer can still match (it will usually have timed out
            // and retransmitted already).
            let mut p = pkt;
            let t3 = self.phase_start();
            p.rewrite_src(self.cfg.virtual_addr);
            self.phases.rewrite_ns += Self::elapsed_ns(t3);
            out.push(ProxyOut::Client(p));
            return out;
        };
        // Phase 2: decode the reply.
        let t2 = self.phase_start();
        let reply = decode_reply(&pkt.payload, rec_proc).ok().map(|(_, r)| r);
        self.phases.decode_ns += Self::elapsed_ns(t2);
        // Failure-suspicion bookkeeping: any reply from a storage site
        // resets its strike count — but suspicion itself clears only via
        // a coordinator-verified probe, because an alive-looking site may
        // still hold regions that diverged during a degraded window. A
        // JUKEBOX bounce from a storage node counts as a strike instead.
        let src_site = self
            .cfg
            .storage_sites
            .iter()
            .position(|a| *a == pkt.src)
            .map(|i| i as u32);
        if let Some(s) = src_site {
            let juke = reply
                .as_ref()
                .is_some_and(|r| r.status == NfsStatus::JukeBox);
            if juke {
                self.strike(now, &mut out, s);
            } else if !self.health[s as usize].suspected {
                self.health[s as usize].strikes = 0;
            }
        }
        // Internal legs of an erasure-coded op are absorbed here and
        // drive the parent op's state machine instead of the generic
        // bookkeeping below.
        if let Some((parent, role)) = rec_coded {
            let t4 = self.phase_start();
            self.pending.remove(&xid);
            self.absorbed += 1;
            self.coded_leg_reply(now, &mut out, parent, role, src_site, reply);
            self.phases.soft_ns += Self::elapsed_ns(t4);
            return out;
        }
        // Phase 4: soft state — multi-reply bookkeeping + attribute cache.
        let t4 = self.phase_start();
        let remaining = {
            let r = self.pending.get_mut(&xid).expect("checked pending");
            r.remaining = r.remaining.saturating_sub(1);
            if let Some(s) = src_site {
                r.awaiting.retain(|&x| x != s);
            }
            // Split reads: stash this half's data for reassembly. The
            // source address says which half answered.
            if let Some(MergeState::Read { low, high, .. }) = &mut r.merge {
                if let Some(slice_nfsproto::ReplyBody::Read { data, .. }) =
                    reply.as_ref().map(|rp| &rp.body)
                {
                    if self.cfg.sf_sites.contains(&pkt.src) {
                        low.get_or_insert_with(|| data.clone());
                    } else {
                        high.get_or_insert_with(|| data.clone());
                    }
                }
            }
            r.remaining
        };
        if remaining > 0 {
            self.absorbed += 1;
            self.phases.soft_ns += Self::elapsed_ns(t4);
            return out; // merge: forward only the final reply
        }
        let rec = self.pending.remove(&xid).expect("checked pending");
        let rec_fh = rec.fh.map(|id| self.fhs.get(id));
        self.degrade_ok.remove(&xid);
        // A JUKEBOX bounce from a directory server marks this µproxy's
        // routing table stale: ask the host to refresh it and absorb the
        // reply — the client's RPC retransmission will re-route the
        // request through the fresh table.
        if rec.class == Class::Dir && !rec.absorb {
            if let Some(r) = &reply {
                if r.status == slice_nfsproto::NfsStatus::JukeBox {
                    self.stale_table_bounces += 1;
                    out.push(ProxyOut::NeedDirTable);
                    self.phases.soft_ns += Self::elapsed_ns(t4);
                    return out;
                }
            }
        }
        let mut evicted = Vec::new();
        // The file whose attribute block rides in this reply (for lookup
        // and create replies that is the *child*, not the request target).
        let mut attr_file = rec_fh;
        if let Some(reply) = &reply {
            if reply.status.is_ok() {
                match rec.class {
                    Class::Dir => {
                        // Authoritative attributes; also harvest handles
                        // from lookup/create bodies.
                        if let Some(attr) = reply.attr {
                            let fh = match &reply.body {
                                slice_nfsproto::ReplyBody::Lookup { fh, .. } => Some(*fh),
                                slice_nfsproto::ReplyBody::Create { fh: Some(fh) } => Some(*fh),
                                _ => rec_fh,
                            };
                            if let Some(fh) = fh {
                                attr_file = Some(fh);
                                if rec.proc == NfsProc::Setattr {
                                    // SETATTR replies replace local deltas:
                                    // an explicit truncate must not be
                                    // re-grown by the merge rule.
                                    evicted.extend(self.attrs.store_replacing(now, &fh, attr));
                                } else {
                                    evicted.extend(self.attrs.store_authoritative(now, &fh, attr));
                                }
                            }
                        }
                    }
                    Class::Storage | Class::SmallFile => {
                        if let Some(fh) = rec_fh {
                            let t = Self::nfs_time(now);
                            match rec.proc {
                                NfsProc::Read => {
                                    evicted.extend(self.attrs.apply_read(now, &fh, t));
                                }
                                NfsProc::Write => {
                                    evicted.extend(self.attrs.apply_write(
                                        now,
                                        &fh,
                                        rec.offset + u64::from(rec.len),
                                        t,
                                    ));
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        // Completion of an intent-guarded fan-out clears the intention.
        if let Some((site, intent)) = rec.intent {
            out.push(ProxyOut::Coord {
                site,
                msg: CoordMsg::CompleteIntent { intent },
            });
        }
        self.phases.soft_ns += Self::elapsed_ns(t4);
        for e in evicted {
            self.push_attrs(&mut out, &e);
        }
        if rec.absorb {
            self.absorbed += 1;
            // A confirmed attribute write-back cleans the cache entry
            // (unless a newer local modification raced with the push). A
            // permanent failure — the home site no longer knows the file —
            // drops the entry instead: the push can never succeed, and
            // leaving it dirty would retry it every interval forever.
            // Transient failures (JUKEBOX, server fault) keep the entry
            // dirty so the next interval retries.
            if let Some((file, version)) = rec.push {
                match reply.as_ref().map(|r| r.status) {
                    Some(NfsStatus::Ok) => self.attrs.mark_clean(file, version),
                    Some(NfsStatus::NoEnt | NfsStatus::Stale | NfsStatus::BadHandle) => {
                        self.attrs.discard(file, version)
                    }
                    _ => {}
                }
            }
            return out;
        }
        // Finalize split requests by re-initiating a merged reply.
        if let Some(merge) = &rec.merge {
            if let (Some(reply), Some(fh)) = (&reply, rec_fh) {
                let t3 = self.phase_start();
                let mut merged = reply.clone();
                if let Some(attr) = self.attrs.get(fh.file_id()) {
                    merged.attr = Some(attr);
                }
                match merge {
                    MergeState::Write { total } => {
                        if let slice_nfsproto::ReplyBody::Write { count, .. } = &mut merged.body {
                            *count = *total;
                        }
                    }
                    MergeState::Read { split, low, high } => {
                        let size = merged
                            .attr
                            .map(|a| a.size)
                            .unwrap_or(rec.offset + u64::from(rec.len));
                        let expected =
                            size.saturating_sub(rec.offset).min(u64::from(rec.len)) as usize;
                        let mut data = vec![0u8; expected];
                        if let Some(lo) = low {
                            let n = lo.len().min(expected);
                            data[..n].copy_from_slice(&lo[..n]);
                        }
                        if let Some(hi) = high {
                            let start = (*split - rec.offset) as usize;
                            if start < expected {
                                let n = hi.len().min(expected - start);
                                data[start..start + n].copy_from_slice(&hi[..n]);
                            }
                        }
                        let eof = rec.offset + expected as u64 >= size;
                        merged.body = slice_nfsproto::ReplyBody::Read { data, eof };
                    }
                }
                let p = Packet::new(
                    self.cfg.virtual_addr,
                    rec.client_src,
                    slice_nfsproto::encode_reply(xid, &merged),
                );
                self.phases.rewrite_ns += Self::elapsed_ns(t3);
                self.replies_routed += 1;
                out.push(ProxyOut::Client(p));
                return out;
            }
        }
        // Reads must reflect the *global* file size the µproxy tracks:
        // storage and small-file servers only know their local extent, so
        // a read in a hole (or past local data) comes back short and is
        // zero-extended here, and a read past EOF is truncated. This is a
        // reply the µproxy re-initiates rather than rewrites in place.
        if rec.proc == NfsProc::Read {
            if let (Some(reply), Some(fh)) = (&reply, rec_fh) {
                if reply.status.is_ok() {
                    if let (Some(attr), slice_nfsproto::ReplyBody::Read { data, .. }) =
                        (self.attrs.get(fh.file_id()), &reply.body)
                    {
                        let expected =
                            attr.size.saturating_sub(rec.offset).min(u64::from(rec.len)) as usize;
                        if data.len() != expected {
                            let t3 = self.phase_start();
                            let mut fixed = reply.clone();
                            fixed.attr = Some(attr);
                            if let slice_nfsproto::ReplyBody::Read { data, eof } = &mut fixed.body {
                                data.resize(expected, 0);
                                *eof = rec.offset + expected as u64 >= attr.size;
                            }
                            let p = Packet::new(
                                self.cfg.virtual_addr,
                                rec.client_src,
                                slice_nfsproto::encode_reply(xid, &fixed),
                            );
                            self.phases.rewrite_ns += Self::elapsed_ns(t3);
                            self.replies_routed += 1;
                            out.push(ProxyOut::Client(p));
                            return out;
                        }
                    }
                }
            }
        }
        // Phase 3: rewrite — restore the virtual source and patch the
        // attribute block with the authoritative cached attributes.
        let t3 = self.phase_start();
        let mut p = pkt;
        p.rewrite_src(self.cfg.virtual_addr);
        {
            // Return a complete, current set of attributes in every
            // response (paper §4.1): overwrite the reply's attribute block
            // with the merged cached attributes.
            if let Some(fh) = attr_file {
                if let Some(attr) = self.attrs.get(fh.file_id()) {
                    // Patch in place when the reply carries an attr block.
                    let flag_off = REPLY_ATTR_OFFSET;
                    if p.payload.len() >= flag_off + 4 + 84 {
                        let flag = u32::from_be_bytes(
                            p.payload[flag_off..flag_off + 4].try_into().expect("fixed"),
                        );
                        if flag == 1 {
                            let mut enc = XdrEncoder::with_capacity(84);
                            attr.encode(&mut enc);
                            p.rewrite_payload(flag_off + 4, enc.as_bytes());
                        }
                    }
                }
            }
        }
        self.phases.rewrite_ns += Self::elapsed_ns(t3);
        self.replies_routed += 1;
        // Restore the original client destination.
        let t3b = self.phase_start();
        p.rewrite_dst(rec.client_src);
        self.phases.rewrite_ns += Self::elapsed_ns(t3b);
        out.push(ProxyOut::Client(p));
        out
    }

    /// Handles a coordinator reply (intent acks and map fragments).
    pub fn coord_reply(&mut self, now: SimTime, reply: CoordReply) -> Vec<ProxyOut> {
        let mut out = Vec::new();
        match reply {
            CoordReply::IntentAck { op_id, intent } => {
                if let Some(pkt) = self.intent_waiters.remove(&op_id) {
                    let xid = op_id as u32;
                    let fh = decode_call(&pkt.payload)
                        .ok()
                        .and_then(|(_, req)| req.primary_fh().copied());
                    if let Some(fh) = fh {
                        let site = self.coord_site(fh.file_id());
                        self.fanout_commit(&mut out, pkt, xid, fh, Some((site, intent)));
                    }
                }
            }
            CoordReply::MapFragment {
                file,
                first_block,
                sites,
                warming,
            } => {
                for (i, s) in sites.iter().enumerate() {
                    self.map_cache
                        .insert((file, first_block + i as u64), s.clone());
                }
                for (i, w) in warming.iter().enumerate() {
                    let key = (file, first_block + i as u64);
                    if w.is_empty() {
                        self.warming_cache.remove(&key);
                    } else {
                        self.warming_cache.insert(key, w.clone());
                    }
                }
                // Release parked requests covered by the fragment.
                let keys: Vec<(u64, u64)> = self
                    .map_waiters
                    .keys()
                    .filter(|(f, b)| {
                        *f == file && *b >= first_block && *b < first_block + sites.len() as u64
                    })
                    .copied()
                    .collect();
                for k in keys {
                    for pkt in self.map_waiters.remove(&k).unwrap_or_default() {
                        let mut more = self.outbound(now, pkt);
                        out.append(&mut more);
                    }
                }
            }
            CoordReply::DirtyAck { op_id } => {
                // The coordinator's dirty-region log now covers the
                // skipped mirror: release the parked write at reduced
                // redundancy.
                if let Some((pkt, live, missed, bytes)) =
                    self.degrade_pending.remove(&(op_id as u32))
                {
                    self.degrade_ok.insert(op_id as u32, live);
                    for site in missed {
                        self.degraded_writes += 1;
                        self.degraded_bytes += bytes;
                        out.push(ProxyOut::Trace(slice_obs::EventKind::DegradedWrite {
                            site: site as usize,
                            bytes,
                        }));
                    }
                    let mut more = self.outbound(now, pkt);
                    out.append(&mut more);
                }
            }
            CoordReply::SiteProbe { site, clean } => {
                if let Some(h) = self.health.get_mut(site as usize) {
                    if h.awaiting_votes > 0 {
                        h.awaiting_votes -= 1;
                        if clean {
                            h.clean_votes += 1;
                        }
                        // Suspicion clears only on a unanimous clean
                        // verdict: the site answered a probe *and* no
                        // coordinator holds dirty regions for it.
                        if h.awaiting_votes == 0
                            && h.clean_votes == self.cfg.coord_sites
                            && h.suspected
                        {
                            h.suspected = false;
                            h.strikes = 0;
                            self.suspicion_log.push((now, site, false));
                            out.push(ProxyOut::Trace(slice_obs::EventKind::SiteCleared {
                                site: site as usize,
                            }));
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// Periodic maintenance: pushes back dirty attributes older than the
    /// write-back interval (bounds timestamp drift, §4.1).
    pub fn tick(&mut self, now: SimTime) -> Vec<ProxyOut> {
        let mut out = Vec::new();
        let stale = self
            .attrs
            .take_stale_dirty(now, self.cfg.writeback_interval);
        for e in stale {
            self.push_attrs(&mut out, &e);
        }
        // Probe suspected sites through the coordinators. A probe with
        // no answer (dead coordinator, dead site) simply re-arms at the
        // next interval — probe_at doubles as the retry deadline.
        if self.cfg.coord_sites > 0 {
            for site in 0..self.health.len() as u32 {
                if self.retired[site as usize] {
                    continue;
                }
                let h = &mut self.health[site as usize];
                if h.suspected && now >= h.probe_at {
                    h.probe_at = now + self.cfg.probe_interval;
                    h.awaiting_votes = self.cfg.coord_sites;
                    h.clean_votes = 0;
                    self.probes_sent += 1;
                    for c in 0..self.cfg.coord_sites {
                        out.push(ProxyOut::Coord {
                            site: c,
                            msg: CoordMsg::ProbeSite { site },
                        });
                    }
                }
            }
        }
        out
    }
}
