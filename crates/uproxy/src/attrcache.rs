//! The µproxy attribute cache.
//!
//! "The µproxy also maintains a cache over file attribute blocks returned
//! in NFS responses from the servers. Directory servers maintain the
//! authoritative attributes for files; the system must keep these
//! attributes current to reflect I/O traffic to the block storage nodes
//! ... The µproxy updates these attributes in its cache as each operation
//! completes, and returns a complete set of attributes to the client in
//! each response ... The µproxy generates an NFS setattr operation to push
//! modified attributes back to the directory server when it evicts
//! attributes from its cache, or when it intercepts an NFS V3 write commit
//! request from the client" (paper §4.1). A periodic write-back bounds
//! timestamp drift.

use slice_sim::FxHashMap;

use slice_nfsproto::{Fattr3, Fhandle, NfsTime};
use slice_sim::{LruCache, SimDuration, SimTime};

/// One cached attribute block.
#[derive(Debug, Clone)]
pub struct CachedAttr {
    /// The handle (needed to address write-backs to the home site).
    pub fh: Fhandle,
    /// The attributes, as merged from server responses and local I/O.
    pub attr: Fattr3,
    /// True when local I/O modified fields the directory server has not
    /// seen yet.
    pub dirty: bool,
    /// When the entry last became dirty (for periodic write-back).
    pub dirty_since: SimTime,
    /// Bumped on every local modification; a write-back only cleans the
    /// entry if no newer modification raced with it.
    pub version: u64,
    /// Version last handed out for a push, if any. Taking the same
    /// version again means the earlier push went unacknowledged — a
    /// retransmission, counted in [`AttrCache::push_retries`].
    last_pushed_version: Option<u64>,
}

/// The attribute cache with dirty tracking and write-back extraction.
#[derive(Debug)]
pub struct AttrCache {
    entries: FxHashMap<u64, CachedAttr>,
    lru: LruCache<u64>,
    hits: u64,
    misses: u64,
    /// Pushes re-issued because an earlier push of the same version went
    /// unacknowledged (lost packet or crashed server). Monotone across
    /// [`AttrCache::clear`] — it instruments recovery, not cache state.
    push_retries: u64,
}

impl AttrCache {
    /// Creates a cache holding at most `capacity` attribute blocks.
    pub fn new(capacity: usize) -> Self {
        AttrCache {
            entries: FxHashMap::default(),
            lru: LruCache::new(capacity as u64),
            hits: 0,
            misses: 0,
            push_retries: 0,
        }
    }

    /// Number of write-back pushes that were retransmissions of an
    /// unacknowledged earlier push.
    pub fn push_retries(&self) -> u64 {
        self.push_retries
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// A sorted audit snapshot `(file, dirty, cached size)` for the
    /// structural oracles: at quiescence no entry may be dirty, and clean
    /// sizes must be subsumed by authoritative server state.
    pub fn audit(&self) -> Vec<(u64, bool, u64)> {
        let mut out: Vec<_> = self
            .entries
            .iter()
            .map(|(&file, e)| (file, e.dirty, e.attr.size))
            .collect();
        out.sort_unstable_by_key(|&(f, _, _)| f);
        out
    }

    /// Looks up current attributes for a file.
    pub fn get(&mut self, file: u64) -> Option<Fattr3> {
        if let Some(e) = self.entries.get(&file) {
            self.hits += 1;
            self.lru.get(&file);
            Some(e.attr)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs authoritative attributes from a directory-server response.
    /// Local dirty deltas (size growth from direct storage writes) are
    /// preserved by taking the maximum size and latest times. Returns any
    /// evicted dirty entries that must be pushed back.
    pub fn store_authoritative(
        &mut self,
        now: SimTime,
        fh: &Fhandle,
        attr: Fattr3,
    ) -> Vec<CachedAttr> {
        let file = fh.file_id();
        let merged = match self.entries.get(&file) {
            Some(old) if old.dirty => {
                let mut a = attr;
                a.size = a.size.max(old.attr.size);
                a.used = a.used.max(old.attr.used);
                a.mtime = a.mtime.max(old.attr.mtime);
                a.atime = a.atime.max(old.attr.atime);
                a
            }
            _ => attr,
        };
        let dirty = self.entries.get(&file).map(|e| e.dirty).unwrap_or(false);
        let dirty_since = self
            .entries
            .get(&file)
            .map(|e| e.dirty_since)
            .unwrap_or(now);
        let version = self.entries.get(&file).map(|e| e.version).unwrap_or(0);
        let last_pushed_version = self.entries.get(&file).and_then(|e| e.last_pushed_version);
        self.entries.insert(
            file,
            CachedAttr {
                fh: *fh,
                attr: merged,
                dirty,
                dirty_since,
                version,
                last_pushed_version,
            },
        );
        let victims = self.lru.insert(file, 1);
        self.evict_from(victims)
    }

    /// Applies a completed read: bumps the access time. Returns evictions.
    pub fn apply_read(&mut self, now: SimTime, fh: &Fhandle, t: NfsTime) -> Vec<CachedAttr> {
        let file = fh.file_id();
        if let Some(e) = self.entries.get_mut(&file) {
            e.attr.atime = e.attr.atime.max(t);
            e.version += 1;
            if !e.dirty {
                e.dirty = true;
                e.dirty_since = now;
            }
            self.lru.get(&file);
            Vec::new()
        } else {
            // First sighting through an I/O path: synthesize from the fh.
            let mut attr = Fattr3::new(slice_nfsproto::FileType::Regular, file, 0o644, t);
            attr.atime = t;
            self.entries.insert(
                file,
                CachedAttr {
                    fh: *fh,
                    attr,
                    dirty: true,
                    dirty_since: now,
                    version: 1,
                    last_pushed_version: None,
                },
            );
            let victims = self.lru.insert(file, 1);
            self.evict_from(victims)
        }
    }

    /// Applies a completed write: grows the size to `end` and stamps the
    /// modify time. Returns evictions.
    pub fn apply_write(
        &mut self,
        now: SimTime,
        fh: &Fhandle,
        end: u64,
        t: NfsTime,
    ) -> Vec<CachedAttr> {
        let file = fh.file_id();
        if let Some(e) = self.entries.get_mut(&file) {
            e.attr.size = e.attr.size.max(end);
            e.attr.used = e.attr.used.max(end);
            e.attr.mtime = e.attr.mtime.max(t);
            e.version += 1;
            if !e.dirty {
                e.dirty = true;
                e.dirty_since = now;
            }
            self.lru.get(&file);
            Vec::new()
        } else {
            let mut attr = Fattr3::new(slice_nfsproto::FileType::Regular, file, 0o644, t);
            attr.size = end;
            attr.used = end;
            attr.mtime = t;
            self.entries.insert(
                file,
                CachedAttr {
                    fh: *fh,
                    attr,
                    dirty: true,
                    dirty_since: now,
                    version: 1,
                    last_pushed_version: None,
                },
            );
            let victims = self.lru.insert(file, 1);
            self.evict_from(victims)
        }
    }

    /// Installs authoritative attributes *replacing* any local dirty
    /// deltas — used for SETATTR replies, where the server's state already
    /// reflects everything the client (or the µproxy write-back) asked
    /// for, including explicit truncations that must not be re-grown by
    /// the max-merge rule.
    pub fn store_replacing(&mut self, now: SimTime, fh: &Fhandle, attr: Fattr3) -> Vec<CachedAttr> {
        let file = fh.file_id();
        let version = self.entries.get(&file).map(|e| e.version).unwrap_or(0);
        let last_pushed_version = self.entries.get(&file).and_then(|e| e.last_pushed_version);
        self.entries.insert(
            file,
            CachedAttr {
                fh: *fh,
                attr,
                dirty: false,
                dirty_since: now,
                version,
                last_pushed_version,
            },
        );
        let victims = self.lru.insert(file, 1);
        self.evict_from(victims)
    }

    fn evict_from(&mut self, victims: Vec<u64>) -> Vec<CachedAttr> {
        victims
            .into_iter()
            .filter_map(|v| self.entries.remove(&v))
            .filter(|e| e.dirty)
            .collect()
    }

    /// Takes the dirty entry for `file` (commit-triggered push-back).
    /// The entry stays dirty until the push is acknowledged via
    /// [`AttrCache::mark_clean`] — a push lost to a crashed server must
    /// not silently discard the update.
    pub fn take_dirty(&mut self, file: u64) -> Option<CachedAttr> {
        let e = self.entries.get_mut(&file)?;
        if !e.dirty {
            return None;
        }
        let retry = e.last_pushed_version == Some(e.version);
        e.last_pushed_version = Some(e.version);
        let out = e.clone();
        if retry {
            self.push_retries += 1;
        }
        Some(out)
    }

    /// Takes every entry dirty since before `now - interval` (periodic
    /// write-back bounding timestamp drift). Entries stay dirty until
    /// acknowledged; `dirty_since` is reset so each is pushed at most once
    /// per interval.
    pub fn take_stale_dirty(&mut self, now: SimTime, interval: SimDuration) -> Vec<CachedAttr> {
        let mut out = Vec::new();
        let mut retries = 0;
        for e in self.entries.values_mut() {
            if e.dirty && now - e.dirty_since >= interval {
                e.dirty_since = now;
                if e.last_pushed_version == Some(e.version) {
                    retries += 1;
                }
                e.last_pushed_version = Some(e.version);
                out.push(e.clone());
            }
        }
        self.push_retries += retries;
        out.sort_by_key(|e| e.fh.file_id());
        out
    }

    /// Acknowledges a write-back: cleans the entry unless a newer local
    /// modification raced with the push.
    pub fn mark_clean(&mut self, file: u64, version: u64) {
        if let Some(e) = self.entries.get_mut(&file) {
            if e.version == version {
                e.dirty = false;
            }
        }
    }

    /// Drops an entry whose write-back failed permanently (the home site
    /// no longer knows the file — removed or stale handle). Retrying such
    /// a push can never succeed, so keeping the entry dirty would re-push
    /// it every write-back interval forever. A newer local modification
    /// (version mismatch) keeps the entry: it will be pushed again and
    /// judged on its own reply.
    pub fn discard(&mut self, file: u64, version: u64) {
        if self.entries.get(&file).map(|e| e.version) == Some(version) {
            self.entries.remove(&file);
            self.lru.remove(&file);
        }
    }

    /// True while any entry awaits a write-back acknowledgement.
    pub fn has_dirty(&self) -> bool {
        self.entries.values().any(|e| e.dirty)
    }

    /// Drops everything (µproxy state loss: permitted, end-to-end
    /// protocols recover).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru = LruCache::new(self.lru.capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slice_nfsproto::FileType;

    fn fh(id: u64) -> Fhandle {
        Fhandle::new(id, 0, 0, 0, 0)
    }

    fn attr(id: u64, size: u64) -> Fattr3 {
        let mut a = Fattr3::new(FileType::Regular, id, 0o644, NfsTime { secs: 1, nsecs: 0 });
        a.size = size;
        a
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn store_and_get() {
        let mut c = AttrCache::new(10);
        c.store_authoritative(t(0), &fh(1), attr(1, 100));
        assert_eq!(c.get(1).unwrap().size, 100);
        assert!(c.get(2).is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn writes_grow_size_and_dirty() {
        let mut c = AttrCache::new(10);
        c.store_authoritative(t(0), &fh(1), attr(1, 100));
        c.apply_write(t(1), &fh(1), 5000, NfsTime { secs: 2, nsecs: 0 });
        let a = c.get(1).unwrap();
        assert_eq!(a.size, 5000);
        assert_eq!(a.mtime, NfsTime { secs: 2, nsecs: 0 });
        // Commit pushes it back; the entry stays dirty until the push is
        // acknowledged at the entry's version.
        let d = c.take_dirty(1).unwrap();
        assert_eq!(d.attr.size, 5000);
        assert!(
            c.take_dirty(1).is_some(),
            "unacknowledged entry stays dirty"
        );
        c.mark_clean(1, d.version);
        assert!(c.take_dirty(1).is_none(), "acknowledged entry is clean");
        // A stale ack (older version) must not clean newer changes.
        c.apply_write(t(2), &fh(1), 6000, NfsTime { secs: 3, nsecs: 0 });
        let d2 = c.take_dirty(1).unwrap();
        c.mark_clean(1, d.version);
        assert!(c.take_dirty(1).is_some(), "stale ack ignored");
        c.mark_clean(1, d2.version);
        assert!(c.take_dirty(1).is_none());
    }

    #[test]
    fn authoritative_store_keeps_local_growth() {
        let mut c = AttrCache::new(10);
        c.apply_write(t(0), &fh(1), 9000, NfsTime { secs: 5, nsecs: 0 });
        // A stale dir-server response (size 0) must not clobber the local
        // size growth.
        c.store_authoritative(t(1), &fh(1), attr(1, 0));
        assert_eq!(c.get(1).unwrap().size, 9000);
    }

    #[test]
    fn eviction_returns_dirty_entries() {
        let mut c = AttrCache::new(2);
        c.apply_write(t(0), &fh(1), 10, NfsTime::default());
        c.apply_write(t(0), &fh(2), 20, NfsTime::default());
        let evicted = c.apply_write(t(0), &fh(3), 30, NfsTime::default());
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].fh.file_id(), 1);
        assert!(evicted[0].dirty);
    }

    #[test]
    fn periodic_writeback_takes_only_stale() {
        let mut c = AttrCache::new(10);
        c.apply_write(t(0), &fh(1), 10, NfsTime::default());
        c.apply_write(t(900), &fh(2), 20, NfsTime::default());
        let wb = c.take_stale_dirty(t(1000), SimDuration::from_millis(500));
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].fh.file_id(), 1);
        // Entry 2 becomes stale later; entry 1 is re-pushed too because
        // its earlier push was never acknowledged.
        let mut wb = c.take_stale_dirty(t(2000), SimDuration::from_millis(500));
        wb.sort_by_key(|e| e.fh.file_id());
        assert_eq!(wb.len(), 2);
        assert_eq!(wb[1].fh.file_id(), 2);
        // Acknowledge both; nothing further to push.
        for e in wb {
            c.mark_clean(e.fh.file_id(), e.version);
        }
        assert!(c
            .take_stale_dirty(t(5000), SimDuration::from_millis(500))
            .is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = AttrCache::new(10);
        c.store_authoritative(t(0), &fh(1), attr(1, 1));
        c.clear();
        assert!(c.is_empty());
    }
}
