//! Erasure-coded striping at the µproxy (slice-ec).
//!
//! When the ensemble runs an (n,k) coded layout, the bulk region of every
//! mapped file is striped as Reed-Solomon groups: one stripe unit U per
//! block-map block, split into k data shards of S = U/k bytes plus n−k
//! parity shards, placed on the n disjoint sites the coordinator's block
//! map names for that block. Data shard j of stripe s holds file bytes
//! `[s·U + j·S, s·U + (j+1)·S)` at those *same* object offsets, so a clean
//! read is an ordinary per-shard READ and the storage nodes need no coded
//! awareness at all; parity shard p lives at object offsets
//! `[s·U + p·S, s·U + (p+1)·S)` on site `sites[k+p]`.
//!
//! The µproxy drives every coded request as a small state machine of
//! internal "legs" (µproxy-initiated RPCs with their own xids):
//!
//! * clean reads — one READ leg per touched data shard;
//! * degraded reads — when a needed shard's site is suspected, the hull
//!   window of any k live shards is gathered and the stripe decoded,
//!   reconstructing the missing bytes in flight;
//! * full-stripe writes — encode and fan n shard WRITE legs;
//! * partial writes — read-modify-write: gather the hull window from k
//!   live shards, decode, overlay the new bytes, re-encode parity, then
//!   write the touched data windows and all parity windows;
//! * degraded writes — suspected legs are skipped once the coordinator
//!   has logged their shard-local dirty windows (the same WAL-backed
//!   `MarkDirty` gate mirrored writes use); resync later rebuilds the
//!   skipped shards from k survivors.
//!
//! Because a partial write reads shards it does not overwrite, two
//! in-flight ops on the same stripe could interleave their
//! read-modify-write cycles and tear the parity. Ops that touch a stripe's
//! parity therefore hold per-(file, stripe) locks for their lifetime;
//! later ops on a locked stripe park and re-enter when the lock drops.
//! The client's RPC retransmission of the *parent* xid aborts and restarts
//! the whole op, so a leg lost to a dead site can never wedge the machine.

use super::*;
use slice_ec::{Codec, CodedLayout};
use slice_nfsproto::{encode_reply, NfsReply, ReplyBody, StableHow};

/// What a coded leg's reply means to its parent op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CodedLegRole {
    /// A survivor-window read feeding a stripe decode: (stripe index
    /// within the op, shard index within the stripe).
    Gather { stripe: u32, shard: u32 },
    /// A clean data-shard read whose bytes go straight to the client.
    Data { stripe: u32, shard: u32 },
    /// A shard write acknowledgement.
    WriteAck,
    /// The below-threshold half of a straddling request.
    SmallFile,
}

/// One stripe touched by a coded op.
#[derive(Debug, Clone)]
struct CodedStripe {
    /// Stripe (block) index.
    s: u64,
    /// The n placement sites, data shards first.
    sites: Vec<u32>,
    /// Hull window `[lo, hi)` of shard-local positions this op touches.
    lo: u64,
    hi: u64,
    /// True when survivor windows must be gathered and decoded (partial
    /// write, or degraded read of this stripe).
    gather: bool,
    /// Gathered survivor windows by shard index, zero-padded to hull len.
    got: Vec<Option<Vec<u8>>>,
}

/// A client request in flight as coded shard legs.
#[derive(Debug, Clone)]
pub(crate) struct CodedOp {
    fh: Fhandle,
    /// Original request range (including any below-threshold head).
    offset: u64,
    len: u32,
    /// Bulk sub-range served by the coded layout.
    blo: u64,
    bhi: u64,
    write: bool,
    stable: StableHow,
    /// Client write payload, indexed from `offset` (empty for reads).
    data: Vec<u8>,
    client_src: SockAddr,
    stripes: Vec<CodedStripe>,
    /// Sites this op routes to: the DirtyAck-approved live set when
    /// degraded, every placement site otherwise.
    live: Vec<u32>,
    /// Storage legs still outstanding in the current phase.
    outstanding: u32,
    /// Storage site per outstanding leg; a client retransmission of the
    /// parent xid strikes exactly these.
    pub(crate) awaiting: Vec<u32>,
    /// Every leg xid issued (removed from `pending` on abort).
    leg_xids: Vec<u32>,
    /// Below-threshold read data from the straddle low half.
    sf_data: Option<Vec<u8>>,
    sf_outstanding: bool,
    /// First WRITE-leg reply: template for the merged client reply (its
    /// verifier stands in for the fan-out, as with mirrored writes).
    template: Option<NfsReply>,
    /// Clean read windows collected: (stripe, shard, bytes).
    reads: Vec<(u32, u32, Vec<u8>)>,
    /// 0 = gathering survivor windows, 1 = final shard writes.
    phase: u8,
}

/// A planned leg, computed before any state is mutated.
struct LegPlan {
    site: u32,
    req: NfsRequest,
    role: CodedLegRole,
}

impl Uproxy {
    /// The coded layout geometry, when `fh`'s bulk region is coded.
    pub(crate) fn coded_geom(&self, fh: &Fhandle) -> Option<CodedLayout> {
        let (n, k) = self.cfg.coded?;
        if !self.cfg.use_block_maps || !fh.is_mapped() || fh.is_dir() || fh.is_symlink() {
            return None;
        }
        Some(CodedLayout::new(n, k, self.cfg.stripe_unit))
    }

    /// True when `[offset, offset+len)` reaches the coded bulk region.
    pub(crate) fn coded_touches_bulk(&self, offset: u64, len: u64) -> bool {
        len > 0 && (self.cfg.sf_sites.is_empty() || offset + len > self.cfg.threshold)
    }

    /// The bulk sub-range of a request (at or above the threshold).
    fn bulk_range(&self, offset: u64, len: u64) -> (u64, u64) {
        let lo = if self.cfg.sf_sites.is_empty() {
            offset
        } else {
            offset.max(self.cfg.threshold)
        };
        (lo, offset + len)
    }

    /// Placement sites for every stripe in `[first, last]`, or `None`
    /// after emitting a `MapGet` and parking the packet on the miss.
    fn coded_sites(
        &mut self,
        out: &mut Vec<ProxyOut>,
        fh: &Fhandle,
        pkt: &Packet,
        first: u64,
        last: u64,
    ) -> Option<Vec<Vec<u32>>> {
        let file = fh.file_id();
        let mut all = Vec::new();
        for b in first..=last {
            match self.map_cache.get(&(file, b)) {
                Some(s) => all.push(s.clone()),
                None => {
                    out.push(ProxyOut::Coord {
                        site: self.coord_site(file),
                        msg: CoordMsg::MapGet {
                            file,
                            first_block: b - b % 16,
                            count: 16,
                        },
                    });
                    self.map_waiters
                        .entry((file, b))
                        .or_default()
                        .push(pkt.clone());
                    return None;
                }
            }
        }
        Some(all)
    }

    /// Takes the per-(file, stripe) locks for `xid`, or parks the packet
    /// on the first busy stripe and returns false. An op re-entering with
    /// locks it already owns passes.
    fn lock_stripes(&mut self, file: u64, stripes: &[u64], xid: u32, pkt: &Packet) -> bool {
        for &s in stripes {
            if let Some(&owner) = self.stripe_locks.get(&(file, s)) {
                if owner != xid {
                    self.coded_waiters.push(((file, s), pkt.clone()));
                    return false;
                }
            }
        }
        for &s in stripes {
            self.stripe_locks.insert((file, s), xid);
        }
        true
    }

    /// Releases every stripe lock `xid` owns and re-admits parked ops.
    fn unlock_stripes(&mut self, now: SimTime, out: &mut Vec<ProxyOut>, xid: u32) {
        let mut keys: Vec<(u64, u64)> = self
            .stripe_locks
            .iter()
            .filter(|&(_, &o)| o == xid)
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        for k in &keys {
            self.stripe_locks.remove(k);
        }
        if keys.is_empty() {
            return;
        }
        let mut rest = Vec::new();
        let mut release = Vec::new();
        for (k, p) in std::mem::take(&mut self.coded_waiters) {
            if keys.contains(&k) {
                release.push(p);
            } else {
                rest.push((k, p));
            }
        }
        self.coded_waiters = rest;
        for p in release {
            let mut more = self.outbound(now, p);
            out.append(&mut more);
        }
    }

    /// Discards a coded op and its legs (client restart or fatal leg
    /// error) and releases its stripe locks.
    pub(crate) fn abort_coded(&mut self, now: SimTime, out: &mut Vec<ProxyOut>, xid: u32) {
        if let Some(op) = self.coded_ops.remove(&xid) {
            for leg in op.leg_xids {
                self.pending.remove(&leg);
            }
        }
        self.unlock_stripes(now, out, xid);
    }

    /// Issues one storage leg of a coded op.
    fn send_leg(&mut self, out: &mut Vec<ProxyOut>, parent: u32, fh: Fhandle, plan: &LegPlan) {
        let xid = self.next_own_xid;
        self.next_own_xid = self.next_own_xid.wrapping_add(1);
        let payload = encode_call(xid, &self.cred, &plan.req);
        let pkt = Packet::new(
            self.cfg.client_addr,
            self.cfg.storage_sites[plan.site as usize],
            payload,
        );
        let (proc, offset, len) = match &plan.req {
            NfsRequest::Read { offset, count, .. } => (NfsProc::Read, *offset, *count),
            NfsRequest::Write { offset, data, .. } => (NfsProc::Write, *offset, data.len() as u32),
            _ => unreachable!("coded legs are reads and writes"),
        };
        let fhid = self.fhs.intern(&fh);
        self.pending.insert(
            xid,
            PendingReq {
                proc,
                fh: Some(fhid),
                offset,
                len,
                class: Class::Storage,
                remaining: 1,
                absorb: false,
                client_src: self.cfg.client_addr,
                intent: None,
                awaiting: vec![plan.site],
                merge: None,
                push: None,
                coded: Some((parent, plan.role)),
            },
        );
        self.initiated += 1;
        if let Some(op) = self.coded_ops.get_mut(&parent) {
            op.outstanding += 1;
            op.awaiting.push(plan.site);
            op.leg_xids.push(xid);
        }
        out.push(ProxyOut::Net(pkt));
    }

    /// Issues the below-threshold half of a straddling coded request to
    /// its small-file server.
    fn send_sf_leg(&mut self, out: &mut Vec<ProxyOut>, parent: u32, fh: Fhandle, req: &NfsRequest) {
        let xid = self.next_own_xid;
        self.next_own_xid = self.next_own_xid.wrapping_add(1);
        let payload = encode_call(xid, &self.cred, req);
        let pkt = Packet::new(self.cfg.client_addr, self.sf_dest(fh.file_id()), payload);
        let (proc, offset, len) = match req {
            NfsRequest::Read { offset, count, .. } => (NfsProc::Read, *offset, *count),
            NfsRequest::Write { offset, data, .. } => (NfsProc::Write, *offset, data.len() as u32),
            _ => unreachable!("sf legs are reads and writes"),
        };
        let fhid = self.fhs.intern(&fh);
        self.pending.insert(
            xid,
            PendingReq {
                proc,
                fh: Some(fhid),
                offset,
                len,
                class: Class::SmallFile,
                remaining: 1,
                absorb: false,
                client_src: self.cfg.client_addr,
                intent: None,
                awaiting: Vec::new(),
                merge: None,
                push: None,
                coded: Some((parent, CodedLegRole::SmallFile)),
            },
        );
        self.initiated += 1;
        if let Some(op) = self.coded_ops.get_mut(&parent) {
            op.sf_outstanding = true;
            op.leg_xids.push(xid);
        }
        out.push(ProxyOut::Net(pkt));
    }

    /// Routes a coded bulk/straddling WRITE: stripes the payload into
    /// (n,k) shard legs, read-modify-writing partial stripes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn coded_write(
        &mut self,
        now: SimTime,
        out: &mut Vec<ProxyOut>,
        pkt: Packet,
        xid: u32,
        fh: Fhandle,
        offset: u64,
        data: Vec<u8>,
        stable: StableHow,
    ) {
        let geom = self.coded_geom(&fh).expect("guarded by route_call");
        let (n, k) = (geom.n as usize, geom.k as usize);
        // A client retransmission of the parent xid restarts the op.
        self.abort_coded(now, out, xid);
        let (blo, bhi) = self.bulk_range(offset, data.len() as u64);
        let (first, last) = (geom.stripe_of(blo), geom.stripe_of(bhi - 1));
        let Some(site_lists) = self.coded_sites(out, &fh, &pkt, first, last) else {
            return;
        };
        let file = fh.file_id();
        let stripe_ids: Vec<u64> = (first..=last).collect();
        if !self.lock_stripes(file, &stripe_ids, xid, &pkt) {
            return;
        }
        let mut union: Vec<u32> = Vec::new();
        for sl in &site_lists {
            for &s in sl {
                if !union.contains(&s) {
                    union.push(s);
                }
            }
        }
        // With fewer than k live shards in some stripe there is nothing to
        // degrade to: route everywhere so retransmissions keep probing.
        let fallback = site_lists.iter().any(|sl| {
            let live = sl
                .iter()
                .filter(|&&s| !self.health[s as usize].suspected)
                .count();
            live < k
        });
        let live = if fallback {
            union
        } else {
            match self.degrade_gate(out, &pkt, xid, file, blo, bhi - blo, union) {
                Some(l) => l,
                // Parked awaiting DirtyAck; locks stay held so no other
                // write can slip in ahead of the logged ranges.
                None => return,
            }
        };
        let blen = bhi - blo;
        let mut stripes = Vec::new();
        for (i, &s) in stripe_ids.iter().enumerate() {
            let full = blo <= s * geom.stripe_unit && bhi >= (s + 1) * geom.stripe_unit;
            let (lo, hi) = geom.parity_window(s, blo, blen);
            stripes.push(CodedStripe {
                s,
                sites: site_lists[i].clone(),
                lo,
                hi,
                gather: !full && k > 1,
                got: vec![None; n],
            });
        }
        self.coded_writes += 1;
        let needs_gather = stripes.iter().any(|st| st.gather);
        // Plan the gather legs before mutating op state: the hull window
        // of the first k live shards of each partial stripe.
        let mut plans = Vec::new();
        for (i, st) in stripes.iter().enumerate() {
            if !st.gather {
                continue;
            }
            let wlen = (st.hi - st.lo) as u32;
            let mut picked = 0;
            for (idx, &site) in st.sites.iter().enumerate() {
                if picked == k {
                    break;
                }
                if !live.contains(&site) {
                    continue;
                }
                plans.push(LegPlan {
                    site,
                    req: NfsRequest::Read {
                        fh,
                        offset: geom.shard_obj_offset(st.s, idx as u32, st.lo),
                        count: wlen,
                    },
                    role: CodedLegRole::Gather {
                        stripe: i as u32,
                        shard: idx as u32,
                    },
                });
                picked += 1;
            }
        }
        let low = (blo > offset).then(|| NfsRequest::Write {
            fh,
            offset,
            stable,
            data: data[..(blo - offset) as usize].to_vec(),
        });
        self.coded_ops.insert(
            xid,
            CodedOp {
                fh,
                offset,
                len: data.len() as u32,
                blo,
                bhi,
                write: true,
                stable,
                data,
                client_src: pkt.src,
                stripes,
                live,
                outstanding: 0,
                awaiting: Vec::new(),
                leg_xids: Vec::new(),
                sf_data: None,
                sf_outstanding: false,
                template: None,
                reads: Vec::new(),
                phase: 0,
            },
        );
        if let Some(low) = low {
            self.send_sf_leg(out, xid, fh, &low);
        }
        for plan in &plans {
            self.send_leg(out, xid, fh, plan);
        }
        if !needs_gather {
            self.coded_write_phase1(now, out, xid);
        }
    }

    /// Computes and issues the final shard writes of a coded write op:
    /// overlays the client bytes on the (decoded or direct) old data,
    /// re-encodes parity, and writes every touched live shard window.
    fn coded_write_phase1(&mut self, now: SimTime, out: &mut Vec<ProxyOut>, xid: u32) {
        let (fh, offset, blo, bhi, stable, live, stripes, data) = {
            let Some(op) = self.coded_ops.get_mut(&xid) else {
                return;
            };
            op.phase = 1;
            (
                op.fh,
                op.offset,
                op.blo,
                op.bhi,
                op.stable,
                op.live.clone(),
                op.stripes.clone(),
                std::mem::take(&mut op.data),
            )
        };
        let geom = self.coded_geom(&fh).expect("op exists only when coded");
        let (n, k) = (geom.n as usize, geom.k as usize);
        let codec = Codec::new(n, k);
        let blen = bhi - blo;
        let mut plans = Vec::new();
        for st in &stripes {
            let wlen = (st.hi - st.lo) as usize;
            // Old data windows over the hull, one per data shard.
            let mut datw: Vec<Vec<u8>> = if st.gather {
                let slots: Vec<Option<&[u8]>> = st.got.iter().map(|g| g.as_deref()).collect();
                match codec.decode(&slots) {
                    Some(w) => w,
                    // Unreachable with k gathered windows; drop the op and
                    // let the client's retransmission restart it.
                    None => {
                        self.abort_coded(now, out, xid);
                        return;
                    }
                }
            } else if blo <= st.s * geom.stripe_unit && bhi >= (st.s + 1) * geom.stripe_unit {
                // Full stripe: every byte comes from the client payload.
                (0..k)
                    .map(|j| {
                        let base = (st.s * geom.stripe_unit + j as u64 * geom.shard_size() - offset)
                            as usize;
                        data[base..base + geom.shard_size() as usize].to_vec()
                    })
                    .collect()
            } else {
                // k == 1 partial write: the hull is exactly the written
                // window, fully known from the payload after the overlay.
                vec![vec![0u8; wlen]; k]
            };
            // Overlay the new client bytes.
            for (j, w) in datw.iter_mut().enumerate() {
                let (a, b) = geom.data_window(st.s, j as u32, blo, blen);
                if a < b {
                    let src = (st.s * geom.stripe_unit + j as u64 * geom.shard_size() + a - offset)
                        as usize;
                    w[(a - st.lo) as usize..(b - st.lo) as usize]
                        .copy_from_slice(&data[src..src + (b - a) as usize]);
                }
            }
            let refs: Vec<&[u8]> = datw.iter().map(|w| w.as_slice()).collect();
            for p in 0..(n - k) {
                let site = st.sites[k + p];
                if !live.contains(&site) {
                    continue;
                }
                plans.push(LegPlan {
                    site,
                    req: NfsRequest::Write {
                        fh,
                        offset: geom.shard_obj_offset(st.s, (k + p) as u32, st.lo),
                        stable,
                        data: codec.parity_row(p, &refs),
                    },
                    role: CodedLegRole::WriteAck,
                });
            }
            for (j, w) in datw.iter().enumerate() {
                let (a, b) = geom.data_window(st.s, j as u32, blo, blen);
                if a < b && live.contains(&st.sites[j]) {
                    plans.push(LegPlan {
                        site: st.sites[j],
                        req: NfsRequest::Write {
                            fh,
                            offset: geom.shard_obj_offset(st.s, j as u32, a),
                            stable,
                            data: w[(a - st.lo) as usize..(b - st.lo) as usize].to_vec(),
                        },
                        role: CodedLegRole::WriteAck,
                    });
                }
            }
        }
        for plan in &plans {
            self.send_leg(out, xid, fh, plan);
        }
        let done = self
            .coded_ops
            .get(&xid)
            .is_some_and(|op| op.outstanding == 0 && !op.sf_outstanding);
        if done {
            self.coded_finish(now, out, xid);
        }
    }

    /// Routes a coded bulk/straddling READ: per-shard legs at natural
    /// offsets, reconstructing through parity when a needed site is
    /// suspected.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn coded_read(
        &mut self,
        now: SimTime,
        out: &mut Vec<ProxyOut>,
        pkt: Packet,
        xid: u32,
        fh: Fhandle,
        offset: u64,
        count: u32,
    ) {
        let geom = self.coded_geom(&fh).expect("guarded by route_call");
        let k = geom.k as usize;
        self.abort_coded(now, out, xid);
        let (blo, bhi) = self.bulk_range(offset, u64::from(count));
        let (first, last) = (geom.stripe_of(blo), geom.stripe_of(bhi - 1));
        let Some(site_lists) = self.coded_sites(out, &fh, &pkt, first, last) else {
            return;
        };
        let file = fh.file_id();
        let blen = bhi - blo;
        // Plan each stripe: clean per-shard legs, or a gather-and-decode
        // when a needed shard's site is suspected and k survivors exist.
        let mut stripes = Vec::new();
        let mut plans = Vec::new();
        let mut gather_stripes = Vec::new();
        let mut failovers = Vec::new();
        for (i, s) in (first..=last).enumerate() {
            let sites = &site_lists[i];
            let live: Vec<u32> = sites
                .iter()
                .copied()
                .filter(|&x| !self.health[x as usize].suspected)
                .collect();
            let mut needed = Vec::new();
            for j in 0..k as u32 {
                let (a, b) = geom.data_window(s, j, blo, blen);
                if a < b {
                    needed.push((j, a, b));
                }
            }
            let degraded_site = needed
                .iter()
                .find(|&&(j, _, _)| !live.contains(&sites[j as usize]))
                .map(|&(j, _, _)| sites[j as usize]);
            let gather = degraded_site.is_some() && live.len() >= k;
            let (lo, hi) = geom.parity_window(s, blo, blen);
            if gather {
                let wlen = (hi - lo) as u32;
                let mut picked = 0;
                for (idx, &site) in sites.iter().enumerate() {
                    if picked == k {
                        break;
                    }
                    if !live.contains(&site) {
                        continue;
                    }
                    plans.push(LegPlan {
                        site,
                        req: NfsRequest::Read {
                            fh,
                            offset: geom.shard_obj_offset(s, idx as u32, lo),
                            count: wlen,
                        },
                        role: CodedLegRole::Gather {
                            stripe: i as u32,
                            shard: idx as u32,
                        },
                    });
                    picked += 1;
                }
                gather_stripes.push(s);
                failovers.push(degraded_site.unwrap_or_default());
            } else {
                // Clean (or <k survivors: route to the suspected shard
                // anyway so retransmissions keep probing it).
                for &(j, a, b) in &needed {
                    plans.push(LegPlan {
                        site: sites[j as usize],
                        req: NfsRequest::Read {
                            fh,
                            offset: geom.shard_obj_offset(s, j, a),
                            count: (b - a) as u32,
                        },
                        role: CodedLegRole::Data {
                            stripe: i as u32,
                            shard: j,
                        },
                    });
                }
            }
            stripes.push(CodedStripe {
                s,
                sites: sites.clone(),
                lo,
                hi,
                gather,
                got: vec![None; geom.n as usize],
            });
        }
        // Decoding mixes windows of several shards: hold the stripe locks
        // so a concurrent read-modify-write cannot tear the reconstruction.
        if !gather_stripes.is_empty() && !self.lock_stripes(file, &gather_stripes, xid, &pkt) {
            return;
        }
        self.coded_reads += 1;
        self.ec_degraded_reads += failovers.len() as u64;
        for site in failovers {
            self.read_failovers += 1;
            out.push(ProxyOut::Trace(slice_obs::EventKind::ReadFailover {
                site: site as usize,
                xid: u64::from(xid),
            }));
        }
        let live_union: Vec<u32> = site_lists.iter().flatten().copied().collect();
        self.coded_ops.insert(
            xid,
            CodedOp {
                fh,
                offset,
                len: count,
                blo,
                bhi,
                write: false,
                stable: StableHow::Unstable,
                data: Vec::new(),
                client_src: pkt.src,
                stripes,
                live: live_union,
                outstanding: 0,
                awaiting: Vec::new(),
                leg_xids: Vec::new(),
                sf_data: None,
                sf_outstanding: false,
                template: None,
                reads: Vec::new(),
                phase: 1,
            },
        );
        if blo > offset {
            let low = NfsRequest::Read {
                fh,
                offset,
                count: (blo - offset) as u32,
            };
            self.send_sf_leg(out, xid, fh, &low);
        }
        for plan in &plans {
            self.send_leg(out, xid, fh, plan);
        }
    }

    /// Absorbs one coded leg's reply and advances the parent op.
    pub(crate) fn coded_leg_reply(
        &mut self,
        now: SimTime,
        out: &mut Vec<ProxyOut>,
        parent: u32,
        role: CodedLegRole,
        src_site: Option<u32>,
        reply: Option<NfsReply>,
    ) {
        let Some(op) = self.coded_ops.get_mut(&parent) else {
            return;
        };
        if let Some(s) = src_site {
            if let Some(pos) = op.awaiting.iter().position(|&x| x == s) {
                op.awaiting.remove(pos);
            }
        }
        match role {
            CodedLegRole::SmallFile => op.sf_outstanding = false,
            _ => op.outstanding = op.outstanding.saturating_sub(1),
        }
        let Some(reply) = reply else {
            // Undecodable leg reply: drop the op; retransmission restarts.
            self.abort_coded(now, out, parent);
            return;
        };
        if !reply.status.is_ok() {
            // Surface the first leg failure as the op's outcome; the
            // client's RPC layer retries (JUKEBOX) or errors out.
            let proc = if op.write {
                NfsProc::Write
            } else {
                NfsProc::Read
            };
            let client = op.client_src;
            let status = reply.status;
            self.abort_coded(now, out, parent);
            let p = Packet::new(
                self.cfg.virtual_addr,
                client,
                encode_reply(parent, &NfsReply::error(proc, status)),
            );
            self.replies_routed += 1;
            out.push(ProxyOut::Client(p));
            return;
        }
        match role {
            CodedLegRole::SmallFile => {
                if let ReplyBody::Read { data, .. } = &reply.body {
                    op.sf_data = Some(data.clone());
                }
            }
            CodedLegRole::Gather { stripe, shard } => {
                let st = &mut op.stripes[stripe as usize];
                let wlen = (st.hi - st.lo) as usize;
                let mut bytes = match reply.body {
                    ReplyBody::Read { data, .. } => data,
                    _ => Vec::new(),
                };
                // Short reads are holes or truncated tails: zeros under
                // the linear code.
                bytes.resize(wlen, 0);
                st.got[shard as usize] = Some(bytes);
            }
            CodedLegRole::Data { stripe, shard } => {
                if let ReplyBody::Read { data, .. } = reply.body {
                    op.reads.push((stripe, shard, data));
                }
            }
            CodedLegRole::WriteAck => {
                if op.template.is_none() {
                    op.template = Some(reply);
                }
            }
        }
        let op = self.coded_ops.get_mut(&parent).expect("still present");
        if op.outstanding == 0 && !op.sf_outstanding {
            if op.write && op.phase == 0 {
                self.coded_write_phase1(now, out, parent);
            } else {
                self.coded_finish(now, out, parent);
            }
        }
    }

    /// Completes a coded op: synthesizes the merged client reply, updates
    /// the attribute cache, and releases stripe locks.
    fn coded_finish(&mut self, now: SimTime, out: &mut Vec<ProxyOut>, xid: u32) {
        let Some(mut op) = self.coded_ops.remove(&xid) else {
            return;
        };
        self.degrade_ok.remove(&xid);
        let geom = self.coded_geom(&op.fh).expect("op exists only when coded");
        let t = Self::nfs_time(now);
        let mut evicted = Vec::new();
        let mut reply = if op.write {
            evicted.extend(
                self.attrs
                    .apply_write(now, &op.fh, op.offset + u64::from(op.len), t),
            );
            let mut r = op.template.take().unwrap_or(NfsReply {
                proc: NfsProc::Write,
                status: slice_nfsproto::NfsStatus::Ok,
                attr: None,
                body: ReplyBody::Write {
                    count: 0,
                    committed: op.stable,
                    verf: 0,
                },
            });
            if let ReplyBody::Write { count, .. } = &mut r.body {
                *count = op.len;
            }
            r
        } else {
            evicted.extend(self.attrs.apply_read(now, &op.fh, t));
            // Decode the gathered stripes into served read windows.
            let codec = Codec::new(geom.n as usize, geom.k as usize);
            let blen = op.bhi - op.blo;
            let mut rebuilt = Vec::new();
            for (i, st) in op.stripes.iter().enumerate() {
                if !st.gather {
                    continue;
                }
                let slots: Vec<Option<&[u8]>> = st.got.iter().map(|g| g.as_deref()).collect();
                let Some(datw) = codec.decode(&slots) else {
                    // Unreachable with k gathered windows; drop the op.
                    self.abort_coded(now, out, xid);
                    return;
                };
                self.ec_reconstructions += 1;
                for (j, w) in datw.iter().enumerate() {
                    let (a, b) = geom.data_window(st.s, j as u32, op.blo, blen);
                    if a < b {
                        self.ec_reconstructed_bytes += b - a;
                        rebuilt.push((
                            i as u32,
                            j as u32,
                            w[(a - st.lo) as usize..(b - st.lo) as usize].to_vec(),
                        ));
                    }
                }
            }
            op.reads.append(&mut rebuilt);
            // Assemble the client buffer against the global size.
            let size = self
                .attrs
                .get(op.fh.file_id())
                .map(|a| a.size)
                .unwrap_or(op.offset + u64::from(op.len));
            let expected = size.saturating_sub(op.offset).min(u64::from(op.len)) as usize;
            let mut data = vec![0u8; expected];
            if let Some(sf) = &op.sf_data {
                let nb = sf.len().min(expected);
                data[..nb].copy_from_slice(&sf[..nb]);
            }
            for (i, j, bytes) in &op.reads {
                let st = &op.stripes[*i as usize];
                let (a, b) = geom.data_window(st.s, *j, op.blo, blen);
                if a >= b {
                    continue;
                }
                let file_pos = st.s * geom.stripe_unit + u64::from(*j) * geom.shard_size() + a;
                let start = (file_pos - op.offset) as usize;
                if start >= expected {
                    continue;
                }
                let want = ((b - a) as usize).min(expected - start);
                let nb = bytes.len().min(want);
                data[start..start + nb].copy_from_slice(&bytes[..nb]);
            }
            let eof = op.offset + expected as u64 >= size;
            NfsReply {
                proc: NfsProc::Read,
                status: slice_nfsproto::NfsStatus::Ok,
                attr: None,
                body: ReplyBody::Read { data, eof },
            }
        };
        if let Some(attr) = self.attrs.get(op.fh.file_id()) {
            reply.attr = Some(attr);
        }
        let p = Packet::new(
            self.cfg.virtual_addr,
            op.client_src,
            encode_reply(xid, &reply),
        );
        self.replies_routed += 1;
        out.push(ProxyOut::Client(p));
        for e in evicted {
            self.push_attrs(out, &e);
        }
        self.unlock_stripes(now, out, xid);
    }
}
