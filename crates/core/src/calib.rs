//! Calibration: simulator parameters derived from the paper's testbed.
//!
//! All experiments share these constants so that no figure is tuned in
//! isolation. Sources (paper §5):
//!
//! * clients/servers are 450 MHz Pentium-III PCs; storage nodes are Dell
//!   PowerEdge 4400s (733 MHz Xeon) with eight Cheetah drives behind one
//!   Ultra-2-mode SCSI channel;
//! * the client NFS/UDP stack saturates below 40 MB/s of writes; reads are
//!   zero-copy with a prefetch depth bound of four 32 KB blocks;
//! * each storage node sources reads at ~55 MB/s and sinks writes at
//!   ~60 MB/s;
//! * a Slice directory server saturates at ~6000 ops/s (≈166 µs/op) while
//!   generating ~0.5 MB/s of log traffic; the MFS baseline is cheaper per
//!   op (no logging) but a single server;
//! * the client-based µproxy consumes ~6 % of a CPU at 6250 packets/s
//!   (≈10 µs/packet).

use slice_sim::{DiskParams, SimDuration};

/// CPU cost on the client to issue one NFS request through its
/// kernel NFS/UDP stack (per-op portion).
pub const CLIENT_SEND_CPU: SimDuration = SimDuration::from_micros(60);

/// Extra client CPU per 4 KB of outgoing write payload (copy + checksum:
/// ~90 µs per 4 KB gives the ~40 MB/s single-client write ceiling).
pub const CLIENT_WRITE_CPU_PER_4K: SimDuration = SimDuration::from_micros(90);

/// Client CPU to consume one reply (zero-copy read path).
pub const CLIENT_RECV_CPU: SimDuration = SimDuration::from_micros(50);

/// Extra client CPU per 4 KB of incoming read payload with the modified
/// zero-copy client (header split: no copy, just page flips).
pub const CLIENT_READ_CPU_PER_4K: SimDuration = SimDuration::from_micros(45);

/// µproxy CPU per intercepted packet (paper Table 3: ~6 % of a CPU at
/// 6250 packets/s).
pub const UPROXY_PACKET_CPU: SimDuration = SimDuration::from_micros(10);

/// Client CPU for each packet the µproxy *initiates* beyond the original
/// (mirrored-write duplicates): driver + DMA submission per duplicate.
pub const UPROXY_DUP_CPU: SimDuration = SimDuration::from_micros(15);

/// Client CPU per 4 KB of duplicated payload (the mirror copy crosses the
/// host bus again).
pub const UPROXY_DUP_CPU_PER_4K: SimDuration = SimDuration::from_micros(20);

/// FreeBSD read-ahead: blocks in flight per sequential stream.
pub const CLIENT_READAHEAD: usize = 4;

/// Client write-behind window (async writes in flight).
pub const CLIENT_WRITE_WINDOW: usize = 8;

/// NFS block size used by the bulk-I/O experiments (32 KB mounts).
pub const NFS_BLOCK: u32 = 32 * 1024;

/// Storage node CPU per I/O request (driver + VM + UDP processing).
pub const STORAGE_REQ_CPU: SimDuration = SimDuration::from_micros(70);

/// Storage node CPU per 4 KB of payload moved.
pub const STORAGE_CPU_PER_4K: SimDuration = SimDuration::from_micros(8);

/// Directory server CPU per name-space operation (≈6000 ops/s ceiling).
pub const DIR_OP_CPU: SimDuration = SimDuration::from_micros(166);

/// Directory server CPU per peer-protocol message.
pub const DIR_PEER_CPU: SimDuration = SimDuration::from_micros(40);

/// Small-file server CPU per request.
pub const SF_OP_CPU: SimDuration = SimDuration::from_micros(90);

/// Coordinator CPU per message.
pub const COORD_MSG_CPU: SimDuration = SimDuration::from_micros(25);

/// Monolithic NFS baseline: CPU per operation (a tuned kernel server).
pub const MONO_OP_CPU: SimDuration = SimDuration::from_micros(130);

/// MFS baseline: CPU per operation (memory filesystem, no disk or log).
pub const MFS_OP_CPU: SimDuration = SimDuration::from_micros(110);

/// Client RPC retransmission timeout.
pub const RPC_TIMEOUT: SimDuration = SimDuration::from_millis(800);

/// Storage node channel bandwidth (Ultra-2-mode SCSI shared by 8 drives:
/// the node sources ~55 MB/s / sinks ~60 MB/s).
pub const STORAGE_CHANNEL_BPS: f64 = 58_000_000.0;

/// Storage node buffer cache bytes (256 MB RAM machines).
pub const STORAGE_CACHE_BYTES: u64 = 200 * 1024 * 1024;

/// Small-file server cache bytes (the SPECsfs ensembles have ~1 GB across
/// two servers).
pub const SF_CACHE_BYTES: u64 = 512 * 1024 * 1024;

/// Monolithic-baseline metadata (inode/dir block) cache bytes. Scaled
/// 1:10 with the benchmark file-set scale factor, like the data caches.
pub const MONO_META_CACHE_BYTES: u64 = 1024 * 1024;

/// Disks per storage node.
pub const DISKS_PER_NODE: usize = 8;

/// The per-arm disk model.
pub fn disk_params() -> DiskParams {
    DiskParams::cheetah()
}

/// µproxy attribute write-back interval (the de-facto three-second window).
pub const ATTR_WRITEBACK: SimDuration = SimDuration::from_secs(3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_cpu_matches_paper_ceiling() {
        // One 32 KB write: send CPU + 8 x per-4K cost ~= 780 µs
        // => ~42 MB/s ceiling, matching the sub-40 MB/s observation once
        // µproxy and reply costs are added.
        let per_op = CLIENT_SEND_CPU.as_nanos() + 8 * CLIENT_WRITE_CPU_PER_4K.as_nanos();
        let bw = 32_768.0 / (per_op as f64 / 1e9);
        assert!(bw > 38e6 && bw < 46e6, "write ceiling {bw}");
    }

    #[test]
    fn dir_cpu_matches_ops_ceiling() {
        let ops_per_sec = 1e9 / DIR_OP_CPU.as_nanos() as f64;
        assert!(ops_per_sec > 5500.0 && ops_per_sec < 6500.0);
    }
}
