//! The client actor: an NFS client stack with an embedded µproxy.
//!
//! The paper's preferred deployment places the µproxy "below the IP stack
//! on each client node, to avoid the store-and-forward delays imposed by
//! host-based intermediaries" (§4.1). This actor models exactly that: the
//! client's RPC layer emits real encoded NFS packets addressed to the
//! virtual server; the packets pass through the embedded [`Uproxy`] on the
//! way out (its CPU cost charged to the client host, as in the paper's
//! client-based configuration) and replies pass back through it on the way
//! in. Baseline configurations omit the µproxy and talk to a single server
//! directly.
//!
//! Workloads drive the client through the [`Workload`] trait and the
//! [`ClientIo`] handle; the RPC layer handles xids, latency accounting,
//! and timeout-based retransmission (the end-to-end recovery the µproxy's
//! statelessness relies on).

use slice_sim::FxHashMap;

use slice_nfsproto::{
    decode_reply, encode_call, AuthUnix, NfsProc, NfsReply, NfsRequest, Packet, SockAddr,
};
use slice_sim::{
    Actor, Ctx, EventKind, LatencyStats, NodeId, SimDuration, SimTime, Subsystem, TimerId,
    START_TAG,
};
use slice_uproxy::{ProxyOut, Uproxy};

use crate::calib;
use crate::history::OpHistory;
use crate::wire::{Router, Wire};

const TAG_TICK: u64 = 1 << 40;
const TAG_RPC: u64 = 2 << 40;
const TAG_WAKE: u64 = 3 << 40;
const TICK_INTERVAL: SimDuration = SimDuration::from_millis(500);
const MAX_RETRIES: u32 = 30;

/// A workload driving one client.
pub trait Workload: Send + 'static {
    /// Called once at simulation start; issue initial operations here.
    fn start(&mut self, io: &mut ClientIo<'_, '_>);

    /// Called for every completed operation (tag matches the `call`).
    fn on_reply(&mut self, io: &mut ClientIo<'_, '_>, tag: u64, reply: &NfsReply);

    /// Called when a wake-up requested via [`ClientIo::wake_in`] fires.
    fn on_wake(&mut self, io: &mut ClientIo<'_, '_>) {
        let _ = io;
    }

    /// True when the workload has finished its run (inspection only).
    fn finished(&self) -> bool {
        false
    }

    /// `Any` access so harnesses can downcast workloads for results.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// This client's address.
    pub addr: SockAddr,
    /// Where requests go: the virtual server (Slice) or a real server
    /// (baselines).
    pub server_addr: SockAddr,
    /// RPC credential.
    pub cred: AuthUnix,
    /// Charge calibrated CPU costs (off for pure protocol tests).
    pub charge_cpu: bool,
    /// Record an [`OpHistory`] of every call for the consistency oracles
    /// (off by default: the big benchmarks should not pay for it).
    pub record_history: bool,
}

/// Per-client statistics.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Completed operations.
    pub ops: u64,
    /// Latency distribution over completed operations.
    pub latency: LatencyStats,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Retransmissions: client RPCs resent on timeout, plus attribute
    /// write-backs the embedded µproxy re-pushed because an earlier push
    /// of the same version went unacknowledged.
    pub retransmits: u64,
    /// Operations surfaced to the workload as failed after exhausting
    /// every retransmission (client-visible timeout).
    pub timeouts: u64,
}

struct PendingRpc {
    tag: u64,
    proc: NfsProc,
    /// The decoded request, kept for timeout retransmission. Re-encoding
    /// under the original xid reproduces the first transmission byte for
    /// byte, so stashing the request (moved in, no payload copy) replaces
    /// the per-RPC packet clone that used to dominate the shallow-clone
    /// counter — retransmissions are rare; sends are not.
    request: NfsRequest,
    sent_at: SimTime,
    first_sent_at: SimTime,
    retries: u32,
    timer: TimerId,
    write_bytes: u64,
}

/// Internal client state shared with [`ClientIo`].
pub struct ClientInner {
    cfg: ClientConfig,
    proxy: Option<Uproxy>,
    router: Router,
    coord_nodes: Vec<NodeId>,
    /// Where to fetch fresh routing tables (directory site 0).
    dir_table_source: Option<NodeId>,
    pending: FxHashMap<u32, PendingRpc>,
    next_xid: u32,
    stats: ClientStats,
    /// Last observed value of the µproxy's push-retry counter, so each
    /// interposed-layer retransmission is folded into the stats once.
    seen_push_retries: u64,
    /// Last observed µproxy attribute-cache hit/miss counts, so each
    /// hit/miss becomes exactly one trace event.
    seen_attr_hits: u64,
    seen_attr_misses: u64,
    /// Begin/end invocation records for the consistency oracles
    /// (populated only when [`ClientConfig::record_history`] is set).
    history: OpHistory,
}

impl ClientInner {
    fn dispatch_proxy_out(&mut self, ctx: &mut Ctx<'_, Wire>, outs: Vec<ProxyOut>) -> Vec<Packet> {
        let mut to_client = Vec::new();
        for o in outs {
            match o {
                ProxyOut::Net(p) => {
                    if let Some(node) = self.router.try_node_of(p.dst) {
                        ctx.trace(
                            Subsystem::Uproxy,
                            EventKind::PacketRouted {
                                from: ctx.node().0 as usize,
                                to: node.0 as usize,
                                bytes: p.payload.len(),
                            },
                        );
                        ctx.send(node, Wire::Udp(p));
                    }
                }
                ProxyOut::Client(p) => to_client.push(p),
                ProxyOut::Coord { site, msg } => {
                    if let Some(&node) = self.coord_nodes.get(site as usize) {
                        ctx.send(node, Wire::Coord(msg));
                    }
                }
                ProxyOut::NeedDirTable => {
                    // Lazily refresh the µproxy's routing table from the
                    // ensemble's table authority (directory site 0).
                    if let Some(node) = self.router.try_node_of(self.cfg.server_addr) {
                        ctx.send(node, Wire::TableFetch);
                    } else if let Some(node) = self.dir_table_source {
                        ctx.send(node, Wire::TableFetch);
                    }
                }
                ProxyOut::Trace(kind) => ctx.trace(Subsystem::Uproxy, kind),
            }
        }
        to_client
    }

    fn send_call(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64, req: NfsRequest) {
        let write_bytes = match &req {
            NfsRequest::Write { data, .. } => data.len() as u64,
            _ => 0,
        };
        if self.cfg.charge_cpu {
            let mut cpu = calib::CLIENT_SEND_CPU;
            if write_bytes > 0 {
                cpu += calib::CLIENT_WRITE_CPU_PER_4K.mul_f64(write_bytes as f64 / 4096.0);
            }
            ctx.use_cpu(cpu);
        }
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let payload = encode_call(xid, &self.cfg.cred, &req);
        let pkt = Packet::new(self.cfg.addr, self.cfg.server_addr, payload);
        ctx.trace(
            Subsystem::Client,
            EventKind::OpStart {
                op: req.proc().name(),
                xid: u64::from(xid),
            },
        );
        if self.cfg.record_history {
            self.history.begin(ctx.now(), xid, &req);
        }
        let timer = ctx.set_timer(calib::RPC_TIMEOUT, TAG_RPC | u64::from(xid));
        self.pending.insert(
            xid,
            PendingRpc {
                tag,
                proc: req.proc(),
                request: req,
                sent_at: ctx.now(),
                first_sent_at: ctx.now(),
                retries: 0,
                timer,
                write_bytes,
            },
        );
        self.transmit(ctx, pkt);
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet) {
        match &mut self.proxy {
            Some(_) => {
                if self.cfg.charge_cpu {
                    ctx.use_cpu(calib::UPROXY_PACKET_CPU);
                }
                let outs = self
                    .proxy
                    .as_mut()
                    .expect("checked")
                    .outbound(ctx.now(), pkt);
                if self.cfg.charge_cpu {
                    // Duplicates the µproxy initiates (mirrored writes)
                    // cost the client host extra driver/DMA work.
                    let nets: Vec<usize> = outs
                        .iter()
                        .filter_map(|o| match o {
                            ProxyOut::Net(p) => Some(p.payload.len()),
                            _ => None,
                        })
                        .collect();
                    for &bytes in nets.iter().skip(1) {
                        ctx.use_cpu(
                            calib::UPROXY_DUP_CPU
                                + calib::UPROXY_DUP_CPU_PER_4K.mul_f64(bytes as f64 / 4096.0),
                        );
                    }
                }
                let leftover = self.dispatch_proxy_out(ctx, outs);
                debug_assert!(
                    leftover.is_empty(),
                    "outbound packets cannot target the client"
                );
                self.sync_proxy_obs(ctx);
            }
            None => {
                if let Some(node) = self.router.try_node_of(pkt.dst) {
                    ctx.send(node, Wire::Udp(pkt));
                }
            }
        }
    }

    /// Folds µproxy-side observability into the client's stats and the
    /// engine trace: retransmissions performed by the interposed layer
    /// (attribute pushes re-issued after an unacknowledged push) count
    /// into [`ClientStats::retransmits`] once each, and attribute-cache
    /// hit/miss deltas become one trace event apiece.
    fn sync_proxy_obs(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let Some(p) = &self.proxy else {
            return;
        };
        let pr = p.push_retries();
        let (hits, misses) = p.attr_cache_stats();
        for _ in self.seen_push_retries..pr {
            // The re-pushed SETATTR carries a µproxy-owned xid the client
            // RPC layer never sees; 0 marks it as interposed-initiated.
            ctx.trace(
                Subsystem::Uproxy,
                EventKind::Retransmit { xid: 0, retries: 1 },
            );
        }
        for _ in self.seen_attr_hits..hits {
            ctx.trace(Subsystem::Uproxy, EventKind::CacheHit { cache: "attr" });
        }
        for _ in self.seen_attr_misses..misses {
            ctx.trace(Subsystem::Uproxy, EventKind::CacheMiss { cache: "attr" });
        }
        self.stats.retransmits += pr - self.seen_push_retries;
        self.seen_push_retries = pr;
        self.seen_attr_hits = hits;
        self.seen_attr_misses = misses;
    }
}

/// The handle workloads use to issue operations.
pub struct ClientIo<'a, 'b> {
    ctx: &'a mut Ctx<'b, Wire>,
    inner: &'a mut ClientInner,
}

impl ClientIo<'_, '_> {
    /// Issues an NFS call; the reply arrives at `on_reply` with `tag`.
    /// Takes the request by value: it is stashed for retransmission (and
    /// a WRITE's data moves with it rather than being copied).
    pub fn call(&mut self, tag: u64, req: NfsRequest) {
        self.inner.send_call(self.ctx, tag, req);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut slice_sim::Rng {
        self.ctx.rng()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ClientStats {
        &self.inner.stats
    }

    /// Requests an [`Workload::on_wake`] callback after `delay`.
    pub fn wake_in(&mut self, delay: SimDuration) {
        self.ctx.set_timer(delay, TAG_WAKE);
    }
}

/// The client actor.
pub struct ClientActor {
    inner: ClientInner,
    workload: Option<Box<dyn Workload>>,
}

impl ClientActor {
    /// Creates a client. `proxy` is `Some` for Slice configurations and
    /// `None` for direct-to-server baselines. `coord_nodes` maps
    /// coordinator site indices to engine nodes.
    pub fn new(
        cfg: ClientConfig,
        proxy: Option<Uproxy>,
        router: Router,
        coord_nodes: Vec<NodeId>,
        workload: Box<dyn Workload>,
    ) -> Self {
        ClientActor {
            inner: ClientInner {
                cfg,
                proxy,
                router,
                coord_nodes,
                dir_table_source: None,
                pending: FxHashMap::default(),
                next_xid: 1,
                stats: ClientStats::default(),
                seen_push_retries: 0,
                seen_attr_hits: 0,
                seen_attr_misses: 0,
                history: OpHistory::new(),
            },
            workload: Some(workload),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ClientStats {
        &self.inner.stats
    }

    /// The recorded op history (empty unless `record_history` was set).
    pub fn history(&self) -> &OpHistory {
        &self.inner.history
    }

    /// The embedded µproxy (for phase statistics and fault injection).
    pub fn proxy(&self) -> Option<&Uproxy> {
        self.inner.proxy.as_ref()
    }

    /// Mutable µproxy access (state-loss injection, table reloads).
    pub fn proxy_mut(&mut self) -> Option<&mut Uproxy> {
        self.inner.proxy.as_mut()
    }

    /// The driving workload, downcast by the caller.
    pub fn workload(&self) -> Option<&dyn Workload> {
        self.workload.as_deref()
    }

    /// Replaces the workload (e.g. to start a second phase on this client
    /// after an earlier one completed); kick the client to start it.
    pub fn set_workload(&mut self, w: Box<dyn Workload>) {
        self.workload = Some(w);
    }

    /// Sets where the µproxy fetches fresh routing tables.
    pub fn set_dir_table_source(&mut self, node: NodeId) {
        self.inner.dir_table_source = Some(node);
    }

    /// True once the workload reports completion.
    pub fn finished(&self) -> bool {
        self.workload.as_ref().map(|w| w.finished()).unwrap_or(true)
    }

    fn with_workload(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        f: impl FnOnce(&mut dyn Workload, &mut ClientIo<'_, '_>),
    ) {
        let mut w = self.workload.take().expect("workload reentrancy");
        {
            let mut io = ClientIo {
                ctx,
                inner: &mut self.inner,
            };
            f(w.as_mut(), &mut io);
        }
        self.workload = Some(w);
    }

    fn deliver_reply(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet) {
        let Ok((xid, _)) = slice_nfsproto::peek_xid_type(&pkt.payload) else {
            return;
        };
        let Some(rec) = self.inner.pending.remove(&xid) else {
            return; // duplicate reply after retransmission
        };
        ctx.cancel_timer(rec.timer);
        let Ok((_, reply)) = decode_reply(&pkt.payload, rec.proc) else {
            return;
        };
        if self.inner.cfg.charge_cpu {
            let mut cpu = calib::CLIENT_RECV_CPU;
            if let slice_nfsproto::ReplyBody::Read { data, .. } = &reply.body {
                cpu += calib::CLIENT_READ_CPU_PER_4K.mul_f64(data.len() as f64 / 4096.0);
            }
            ctx.use_cpu(cpu);
        }
        self.inner.stats.ops += 1;
        let latency = ctx.now() - rec.first_sent_at;
        self.inner.stats.latency.record(latency);
        ctx.trace(
            Subsystem::Client,
            EventKind::OpComplete {
                op: rec.proc.name(),
                xid: u64::from(xid),
                latency_ns: latency.as_nanos(),
            },
        );
        ctx.obs()
            .registry
            .observe("client.op_latency_ns", latency.as_nanos());
        self.inner.stats.bytes_written += rec.write_bytes;
        if let slice_nfsproto::ReplyBody::Read { data, .. } = &reply.body {
            self.inner.stats.bytes_read += data.len() as u64;
        }
        if self.inner.cfg.record_history {
            self.inner
                .history
                .complete(ctx.now(), xid, rec.retries, &reply);
        }
        let tag = rec.tag;
        // The completed RPC's stashed WRITE data and the reply's READ
        // payload are both dead now; hand them back to the recycler
        // instead of dropping them on the allocator.
        if let NfsRequest::Write { data, .. } = rec.request {
            slice_sim::pool::give(data);
        }
        self.with_workload(ctx, |w, io| w.on_reply(io, tag, &reply));
        if let slice_nfsproto::ReplyBody::Read { data, .. } = reply.body {
            slice_sim::pool::give(data);
        }
    }
}

impl Actor<Wire> for ClientActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, _from: NodeId, msg: Wire) {
        match msg {
            Wire::Udp(pkt) => {
                let replies = if self.inner.proxy.is_some() {
                    if self.inner.cfg.charge_cpu {
                        ctx.use_cpu(calib::UPROXY_PACKET_CPU);
                    }
                    let outs = self
                        .inner
                        .proxy
                        .as_mut()
                        .expect("checked")
                        .inbound(ctx.now(), pkt);
                    let replies = self.inner.dispatch_proxy_out(ctx, outs);
                    self.inner.sync_proxy_obs(ctx);
                    replies
                } else {
                    vec![pkt]
                };
                for p in replies {
                    self.deliver_reply(ctx, p);
                }
            }
            Wire::CoordReply(reply) if self.inner.proxy.is_some() => {
                let outs = self
                    .inner
                    .proxy
                    .as_mut()
                    .expect("checked")
                    .coord_reply(ctx.now(), reply);
                let leftover = self.inner.dispatch_proxy_out(ctx, outs);
                for p in leftover {
                    self.deliver_reply(ctx, p);
                }
            }
            Wire::TableData { slots, generation } => {
                // A refreshed routing table from the ensemble's table
                // authority; load it if newer than what we hold.
                if let Some(proxy) = self.inner.proxy.as_mut() {
                    if generation > proxy.dir_table_generation() {
                        proxy.load_dir_table(slice_uproxy::RoutingTable::from_slots(
                            slots, generation,
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64) {
        if tag == START_TAG {
            ctx.set_timer(TICK_INTERVAL, TAG_TICK);
            self.with_workload(ctx, |w, io| w.start(io));
            return;
        }
        if tag == TAG_WAKE {
            self.with_workload(ctx, |w, io| w.on_wake(io));
            return;
        }
        if tag == TAG_TICK {
            if self.inner.proxy.is_some() {
                let outs = self.inner.proxy.as_mut().expect("checked").tick(ctx.now());
                let leftover = self.inner.dispatch_proxy_out(ctx, outs);
                debug_assert!(leftover.is_empty());
                self.inner.sync_proxy_obs(ctx);
            }
            // The tick keeps running while anything is outstanding: an
            // unfinished workload, an unanswered RPC, or a dirty attribute
            // awaiting write-back acknowledgement. Once fully quiescent it
            // stops rearming so the event queue can drain — otherwise a
            // finished ensemble ticks (and pushes write-backs) forever and
            // `run_to_completion` burns events long past the workload.
            // Quiescence is decided *after* the proxy tick above, so dirt
            // created by a just-delivered reply is always pushed first.
            let quiescent = self.finished()
                && self.inner.pending.is_empty()
                && self
                    .inner
                    .proxy
                    .as_ref()
                    .map(|p| !p.has_dirty_attrs())
                    .unwrap_or(true);
            if !quiescent {
                ctx.set_timer(TICK_INTERVAL, TAG_TICK);
            }
            return;
        }
        if tag & TAG_RPC != 0 {
            let xid = (tag & 0xffff_ffff) as u32;
            // Retransmit: the µproxy may have lost state or packets may
            // have been dropped; resend the original virtual-addressed
            // packet through the full path.
            let Some(rec) = self.inner.pending.get_mut(&xid) else {
                return;
            };
            if rec.retries >= MAX_RETRIES {
                // Out of retries: the op fails with a client-visible
                // timeout instead of silently vanishing — the workload
                // gets an error reply so its slot frees, the history
                // records the outcome, and the stats count it.
                let rec = self.inner.pending.remove(&xid).expect("checked");
                self.inner.stats.timeouts += 1;
                let reply = NfsReply::error(rec.proc, slice_nfsproto::NfsStatus::Io);
                let latency = ctx.now() - rec.first_sent_at;
                ctx.trace(
                    Subsystem::Client,
                    EventKind::OpComplete {
                        op: rec.proc.name(),
                        xid: u64::from(xid),
                        latency_ns: latency.as_nanos(),
                    },
                );
                ctx.obs().registry.add("client.rpc_timeouts", 1);
                if self.inner.cfg.record_history {
                    self.inner
                        .history
                        .complete(ctx.now(), xid, rec.retries, &reply);
                }
                let wtag = rec.tag;
                self.with_workload(ctx, |w, io| w.on_reply(io, wtag, &reply));
                return;
            }
            rec.retries += 1;
            rec.sent_at = ctx.now();
            // Capped exponential backoff (1x, 2x, 4x, 8x the RPC timeout)
            // with deterministic jitter from the sim RNG, so a herd of
            // timed-out clients does not hammer a recovering node in
            // lockstep.
            let shift = (rec.retries - 1).min(3);
            let base = calib::RPC_TIMEOUT.mul_f64((1u64 << shift) as f64);
            let backoff = base + base.mul_f64(0.25 * ctx.rng().gen::<f64>());
            rec.timer = ctx.set_timer(backoff, TAG_RPC | u64::from(xid));
            // Re-encode the stashed request under its original xid —
            // byte-identical to the first transmission, without keeping a
            // packet clone alive for every in-flight RPC.
            let payload = encode_call(xid, &self.inner.cfg.cred, &rec.request);
            let pkt = Packet::new(self.inner.cfg.addr, self.inner.cfg.server_addr, payload);
            let retries = rec.retries;
            self.inner.stats.retransmits += 1;
            ctx.trace(
                Subsystem::Client,
                EventKind::Retransmit {
                    xid: u64::from(xid),
                    retries,
                },
            );
            // Observed retransmissions feed the µproxy's failure-suspicion
            // table: the interposed layer learns a routed-to site is not
            // answering and steers the retry (and later traffic) away.
            if let Some(p) = self.inner.proxy.as_mut() {
                let outs = p.note_retransmit(ctx.now(), xid);
                let leftover = self.inner.dispatch_proxy_out(ctx, outs);
                debug_assert!(leftover.is_empty());
            }
            self.inner.transmit(ctx, pkt);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
