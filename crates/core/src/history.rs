//! Client op-history recording for the `slice-check` verification
//! subsystem.
//!
//! Every client-visible NFS operation becomes one [`OpRecord`]: a begin
//! event captured when the RPC layer first transmits the call, and an end
//! event captured when the (first) reply is delivered to the workload.
//! The records are the raw material for the consistency oracles in the
//! `slice-check` crate — linearizability of read/write/truncate over a
//! per-chunk register model, close-to-open checks, and equivalence against
//! a crash-free reference run.
//!
//! Recording is off by default (`SliceConfig::record_history`) so the big
//! paper benchmarks pay nothing; tests and the schedule explorer turn it
//! on.

use slice_sim::FxHashMap;

use slice_nfsproto::{NfsReply, NfsRequest, NfsStatus, ReplyBody, StableHow};
use slice_sim::SimTime;

/// Register granularity of the data-consistency model: file contents are
/// analyzed as an array of fixed-size chunks, and only chunks *fully*
/// covered by an operation (and holding a uniform byte value) participate.
/// This matches the 1 KiB-aligned patterns the scripted and randomized
/// workloads write, while staying sound for arbitrary traffic: partially
/// covered or mixed-value chunks simply produce no register operation.
pub const CHUNK_BYTES: u64 = 1024;

/// One recorded client-visible operation (begin/end invocation record).
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// RPC xid (stable across retransmissions).
    pub xid: u32,
    /// Procedure name (`lookup`, `read`, `write`, ...).
    pub op: &'static str,
    /// When the call was first transmitted.
    pub begin: SimTime,
    /// When the reply reached the workload (`None` = never completed).
    pub end: Option<SimTime>,
    /// Reply status, when completed.
    pub status: Option<NfsStatus>,
    /// Retransmissions performed before completion. A nonzero count means
    /// a non-idempotent op may have been applied more than once (the
    /// server's duplicate-request cache can be lost in a crash), which the
    /// oracles must tolerate per NFS semantics.
    pub retries: u32,
    /// Target file id (read/write/commit/getattr/setattr/link source).
    pub file: u64,
    /// Parent directory file id for namespace ops.
    pub dir: u64,
    /// Destination directory file id (rename).
    pub dir2: u64,
    /// Name operand (lookup/create/mkdir/remove/rename source/...).
    pub name: Option<String>,
    /// Second name operand (rename destination).
    pub to_name: Option<String>,
    /// Byte offset (read/write/commit).
    pub offset: u64,
    /// Byte length (read request count / write data length).
    pub len: u32,
    /// Write stability requested.
    pub stable: Option<StableHow>,
    /// Setattr size, i.e. a truncate/extend to this length.
    pub truncate_to: Option<u64>,
    /// Index of the first chunk fully covered by this op's byte range.
    pub chunk0: u64,
    /// Per-chunk uniform byte values written (`None` = mixed bytes).
    pub wrote: Vec<Option<u8>>,
    /// Per-chunk uniform byte values a read observed (filled at end).
    pub read: Vec<Option<u8>>,
    /// Bytes actually returned by a read (short at end of file).
    pub read_len: Option<u32>,
    /// File id minted by create/mkdir/symlink (from the reply handle).
    pub new_file: Option<u64>,
}

/// Uniform byte values of the chunks fully covered by `[offset,
/// offset+data.len())`, together with the first covered chunk index.
fn chunk_values(offset: u64, data: &[u8]) -> (u64, Vec<Option<u8>>) {
    let end = offset + data.len() as u64;
    let first = offset.div_ceil(CHUNK_BYTES);
    let last = end / CHUNK_BYTES; // exclusive
    let mut vals = Vec::new();
    for c in first..last {
        let lo = (c * CHUNK_BYTES - offset) as usize;
        let hi = lo + CHUNK_BYTES as usize;
        let b = data[lo];
        let uniform = data[lo..hi].iter().all(|&x| x == b);
        vals.push(if uniform { Some(b) } else { None });
    }
    (first, vals)
}

/// A per-client sequence of [`OpRecord`]s in issue order.
#[derive(Debug, Default)]
pub struct OpHistory {
    records: Vec<OpRecord>,
    open: FxHashMap<u32, usize>,
}

impl OpHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        OpHistory::default()
    }

    /// Records the begin event of a call as it is first transmitted.
    pub fn begin(&mut self, now: SimTime, xid: u32, req: &NfsRequest) {
        let mut rec = OpRecord {
            xid,
            op: req.proc().name(),
            begin: now,
            end: None,
            status: None,
            retries: 0,
            file: 0,
            dir: 0,
            dir2: 0,
            name: None,
            to_name: None,
            offset: 0,
            len: 0,
            stable: None,
            truncate_to: None,
            chunk0: 0,
            wrote: Vec::new(),
            read: Vec::new(),
            read_len: None,
            new_file: None,
        };
        match req {
            NfsRequest::Lookup { dir, name } => {
                rec.dir = dir.file_id();
                rec.name = Some(name.clone());
            }
            NfsRequest::Read { fh, offset, count } => {
                rec.file = fh.file_id();
                rec.offset = *offset;
                rec.len = *count;
            }
            NfsRequest::Write {
                fh,
                offset,
                stable,
                data,
            } => {
                rec.file = fh.file_id();
                rec.offset = *offset;
                rec.len = data.len() as u32;
                rec.stable = Some(*stable);
                let (c0, vals) = chunk_values(*offset, data);
                rec.chunk0 = c0;
                rec.wrote = vals;
            }
            NfsRequest::Create { dir, name, .. }
            | NfsRequest::Mkdir { dir, name, .. }
            | NfsRequest::Symlink { dir, name, .. }
            | NfsRequest::Remove { dir, name }
            | NfsRequest::Rmdir { dir, name } => {
                rec.dir = dir.file_id();
                rec.name = Some(name.clone());
            }
            NfsRequest::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                rec.dir = from_dir.file_id();
                rec.name = Some(from_name.clone());
                rec.dir2 = to_dir.file_id();
                rec.to_name = Some(to_name.clone());
            }
            NfsRequest::Link { fh, dir, name } => {
                rec.file = fh.file_id();
                rec.dir = dir.file_id();
                rec.name = Some(name.clone());
            }
            NfsRequest::Setattr { fh, attr } => {
                rec.file = fh.file_id();
                rec.truncate_to = attr.size;
            }
            NfsRequest::Getattr { fh }
            | NfsRequest::Access { fh, .. }
            | NfsRequest::Readlink { fh }
            | NfsRequest::Fsstat { fh } => {
                rec.file = fh.file_id();
            }
            NfsRequest::Commit { fh, offset, count } => {
                rec.file = fh.file_id();
                rec.offset = *offset;
                rec.len = *count;
            }
            NfsRequest::Readdir { dir, .. } | NfsRequest::Readdirplus { dir, .. } => {
                rec.dir = dir.file_id();
            }
            NfsRequest::Null => {}
        }
        self.open.insert(xid, self.records.len());
        self.records.push(rec);
    }

    /// Records the end event when the reply reaches the workload.
    pub fn complete(&mut self, now: SimTime, xid: u32, retries: u32, reply: &NfsReply) {
        let Some(idx) = self.open.remove(&xid) else {
            return;
        };
        let rec = &mut self.records[idx];
        rec.end = Some(now);
        rec.status = Some(reply.status);
        rec.retries = retries;
        match &reply.body {
            ReplyBody::Read { data, .. } => {
                rec.read_len = Some(data.len() as u32);
                let (c0, vals) = chunk_values(rec.offset, data);
                rec.chunk0 = c0;
                rec.read = vals;
            }
            ReplyBody::Create { fh: Some(fh) } => {
                rec.new_file = Some(fh.file_id());
            }
            ReplyBody::Lookup { fh, .. } => {
                rec.new_file = Some(fh.file_id());
            }
            _ => {}
        }
    }

    /// The recorded operations, in issue order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_values_cover_full_chunks_only() {
        // [100, 2148): chunk 1 fully covered, chunks 0 and 2 partially.
        let data = vec![7u8; 2048];
        let (c0, vals) = chunk_values(100, &data);
        assert_eq!(c0, 1);
        assert_eq!(vals, vec![Some(7)]);
        // Aligned two-chunk write covers both.
        let (c0, vals) = chunk_values(1024, &data);
        assert_eq!(c0, 1);
        assert_eq!(vals, vec![Some(7), Some(7)]);
    }

    #[test]
    fn mixed_chunks_are_excluded() {
        let mut data = vec![1u8; 1024];
        data[512] = 2;
        let (_, vals) = chunk_values(0, &data);
        assert_eq!(vals, vec![None]);
    }
}
