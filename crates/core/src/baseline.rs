//! Baseline servers: a monolithic NFS server (the FreeBSD/FFS box of
//! Figure 5) and a memory-based file server (the N-MFS line of Figure 3).
//!
//! Both serve the *entire* NFS protocol at one node, with no µproxy, no
//! ensemble, and no request routing. The monolithic server pays
//! synchronous metadata disk writes (FFS-style) and disk time for data
//! misses on its local array; the MFS variant keeps everything in memory
//! and pays only CPU — which is why it is fast until its single CPU
//! saturates, exactly the crossover Figure 3 shows.

use std::any::Any;

use slice_dirsvc::{DirAction, DirServer, DirServerConfig, NamePolicy};
use slice_nfsproto::{
    decode_call, encode_reply, NfsReply, NfsRequest, Packet, ReplyBody, SockAddr,
};
use slice_sim::{Actor, Ctx, DiskArray, FxHashMap, LruCache, NodeId, SimTime};
use slice_storage::{StorageNode, StorageNodeConfig};

use crate::actors::{DrcCheck, ReplyCache};
use crate::calib;
use crate::wire::{Router, Wire};

/// Which baseline is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// FreeBSD NFS over FFS on a CCD-concatenated disk array.
    NfsFfs,
    /// FreeBSD MFS: a memory filesystem, no stable storage.
    Mfs,
}

/// A complete single-node NFS file service.
pub struct MonoFs {
    kind: BaselineKind,
    dir: DirServer,
    data: StorageNode,
    /// Extra arm pool for synchronous metadata updates (shared array in
    /// reality; a stream id namespace keeps them distinct).
    meta_disks: Option<DiskArray>,
    /// FFS metadata (inode + directory block) cache: unlike Slice's
    /// dataless, memory-resident directory servers, the monolithic server
    /// pays disk reads for cold name-space metadata — the reason its
    /// SPECsfs throughput is bound by the disk arms (Figure 5).
    meta_cache: Option<LruCache<u64>>,
    ops: u64,
}

impl MonoFs {
    /// Creates a baseline server of the given kind with `disks` arms.
    pub fn new(kind: BaselineKind, disks: usize, retain_data: bool) -> Self {
        let storage_cfg = StorageNodeConfig {
            disks,
            channel_bps: calib::STORAGE_CHANNEL_BPS,
            cache_bytes: calib::STORAGE_CACHE_BYTES,
            retain_data,
            ..Default::default()
        };
        MonoFs {
            kind,
            dir: DirServer::new(DirServerConfig {
                site: 0,
                sites: 1,
                policy: NamePolicy::MkdirSwitching,
                clock_skew: slice_sim::SimDuration::ZERO,
                wal: Default::default(),
                default_mapped: false,
            }),
            data: StorageNode::new(&storage_cfg),
            meta_disks: match kind {
                BaselineKind::NfsFfs => Some(DiskArray::new(
                    disks,
                    calib::disk_params(),
                    calib::STORAGE_CHANNEL_BPS,
                )),
                BaselineKind::Mfs => None,
            },
            meta_cache: match kind {
                BaselineKind::NfsFfs => Some(LruCache::new(calib::MONO_META_CACHE_BYTES)),
                BaselineKind::Mfs => None,
            },
            ops: 0,
        }
    }

    /// Operations served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The namespace component (inspection).
    pub fn dir(&self) -> &DirServer {
        &self.dir
    }

    /// Serves one request, returning the completion time and reply.
    pub fn handle(&mut self, now: SimTime, token: u64, req: &NfsRequest) -> (SimTime, NfsReply) {
        self.ops += 1;
        match req {
            NfsRequest::Read { fh, offset, count } => {
                let (done, mut reply) = match self.kind {
                    BaselineKind::NfsFfs => self.data.handle_nfs(now, req),
                    BaselineKind::Mfs => {
                        let (_, r) = self.data.handle_nfs(now, req);
                        (now, r)
                    }
                };
                self.dir
                    .apply_io(now, fh.file_id(), offset + u64::from(*count), false);
                reply.attr = self.dir.attr_of(fh.file_id()).copied().or(reply.attr);
                // EOF from the authoritative size, not the object store.
                if let (Some(attr), ReplyBody::Read { data, eof }) =
                    (reply.attr.as_ref(), &mut reply.body)
                {
                    let avail = attr.size.saturating_sub(*offset).min(u64::from(*count)) as usize;
                    data.truncate(avail);
                    *eof = offset + data.len() as u64 >= attr.size;
                }
                (done, reply)
            }
            NfsRequest::Write {
                fh, offset, data, ..
            } => {
                let (done, mut reply) = match self.kind {
                    BaselineKind::NfsFfs => self.data.handle_nfs(now, req),
                    BaselineKind::Mfs => {
                        let (_, r) = self.data.handle_nfs(now, req);
                        (now, r)
                    }
                };
                self.dir
                    .apply_io(now, fh.file_id(), offset + data.len() as u64, true);
                reply.attr = self.dir.attr_of(fh.file_id()).copied().or(reply.attr);
                (done, reply)
            }
            NfsRequest::Commit { .. } => {
                let (done, reply) = match self.kind {
                    BaselineKind::NfsFfs => self.data.handle_nfs(now, req),
                    BaselineKind::Mfs => {
                        let (_, r) = self.data.handle_nfs(now, req);
                        (now, r)
                    }
                };
                (done, reply)
            }
            other => {
                // Cold FFS metadata: a miss costs a directory-block read
                // plus an inode read on the shared arms.
                let mut meta_done = now;
                if let (Some(cache), Some(disks)) = (&mut self.meta_cache, &mut self.meta_disks) {
                    let key = match other {
                        NfsRequest::Lookup { dir, name }
                        | NfsRequest::Create { dir, name, .. }
                        | NfsRequest::Remove { dir, name }
                        | NfsRequest::Mkdir { dir, name, .. }
                        | NfsRequest::Rmdir { dir, name }
                        | NfsRequest::Symlink { dir, name, .. } => {
                            slice_hashes::name_fingerprint(&dir.0, name.as_bytes())
                        }
                        _ => other.primary_fh().map(|f| f.file_id()).unwrap_or(0),
                    };
                    if !cache.get(&key) {
                        let d1 = disks.submit(now, key, (key % 4096) * 8192, 8192, false);
                        let d2 = disks.submit(now, key ^ 1, (key % 2048) * 8192, 512, false);
                        meta_done = d1.max(d2);
                        cache.insert(key, 512);
                    }
                }
                // Name-space operation through the single-site directory
                // component; all actions are local.
                let actions = self.dir.handle_nfs(now, token, other);
                let mut reply_out: Option<(SimTime, NfsReply)> = None;
                for action in actions {
                    match action {
                        DirAction::Reply { reply, at, .. } => {
                            reply_out = Some((at, reply));
                        }
                        DirAction::DataRemove { file, .. } => {
                            self.data
                                .handle_ctl(now, &slice_storage::StorageCtl::Remove { obj: file });
                        }
                        DirAction::DataTruncate { file, size, .. } => {
                            self.data.handle_ctl(
                                now,
                                &slice_storage::StorageCtl::Truncate { obj: file, size },
                            );
                        }
                        DirAction::Peer { .. } => unreachable!("single-site baseline"),
                    }
                }
                let (at, reply) = reply_out.unwrap_or((
                    now,
                    NfsReply::error(other.proc(), slice_nfsproto::NfsStatus::ServerFault),
                ));
                let done = match (self.kind, &mut self.meta_disks) {
                    (BaselineKind::Mfs, _) => now, // no log, no disk
                    (BaselineKind::NfsFfs, Some(disks)) if Self::is_update(other) => {
                        // FFS synchronous metadata: an inode write and a
                        // directory block write.
                        let dirid = other.primary_fh().map(|f| f.file_id()).unwrap_or(0);
                        disks.submit(now, dirid, now.as_nanos() % (1 << 30), 512, true);
                        let d2 =
                            disks.submit(now, dirid, now.as_nanos() % (1 << 30) + 4096, 512, true);
                        at.max(d2).max(meta_done)
                    }
                    _ => at.max(now).max(meta_done),
                };
                (done, reply)
            }
        }
    }

    fn is_update(req: &NfsRequest) -> bool {
        matches!(
            req,
            NfsRequest::Create { .. }
                | NfsRequest::Mkdir { .. }
                | NfsRequest::Symlink { .. }
                | NfsRequest::Remove { .. }
                | NfsRequest::Rmdir { .. }
                | NfsRequest::Rename { .. }
                | NfsRequest::Link { .. }
                | NfsRequest::Setattr { .. }
        )
    }
}

/// Actor hosting a baseline server.
pub struct BaselineActor {
    /// The server.
    pub fs: MonoFs,
    addr: SockAddr,
    router: Router,
    deferred: FxHashMap<u64, (NodeId, Wire)>,
    next_tag: u64,
    next_token: u64,
    charge_cpu: bool,
    drc: ReplyCache,
}

impl BaselineActor {
    /// Creates a baseline actor at `addr`.
    pub fn new(fs: MonoFs, addr: SockAddr, router: Router, charge_cpu: bool) -> Self {
        BaselineActor {
            fs,
            addr,
            router,
            deferred: FxHashMap::default(),
            next_tag: 1,
            next_token: 1,
            charge_cpu,
            drc: ReplyCache::default(),
        }
    }
}

impl Actor<Wire> for BaselineActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, _from: NodeId, msg: Wire) {
        let Wire::Udp(pkt) = msg else {
            return;
        };
        let Ok((hdr, req)) = decode_call(&pkt.payload) else {
            return;
        };
        if self.charge_cpu {
            let base = match self.fs.kind {
                BaselineKind::NfsFfs => calib::MONO_OP_CPU,
                BaselineKind::Mfs => calib::MFS_OP_CPU,
            };
            let bytes = match &req {
                NfsRequest::Write { data, .. } => data.len(),
                NfsRequest::Read { count, .. } => *count as usize,
                _ => 0,
            };
            ctx.use_cpu(base + calib::STORAGE_CPU_PER_4K.mul_f64(bytes as f64 / 4096.0));
        }
        match self.drc.admit(pkt.src, hdr.xid) {
            DrcCheck::Replay(reply) => {
                let out = Packet::new(self.addr, pkt.src, encode_reply(hdr.xid, &reply));
                if let Some(node) = self.router.try_node_of(pkt.src) {
                    ctx.send(node, Wire::Udp(out));
                }
                return;
            }
            DrcCheck::InProgress => return,
            DrcCheck::Fresh => {}
        }
        let token = self.next_token;
        self.next_token += 1;
        let (done, reply) = self.fs.handle(ctx.now(), token, &req);
        self.drc.complete(pkt.src, hdr.xid, &reply);
        let out = Packet::new(self.addr, pkt.src, encode_reply(hdr.xid, &reply));
        let Some(node) = self.router.try_node_of(pkt.src) else {
            return;
        };
        if done <= ctx.now() {
            ctx.send(node, Wire::Udp(out));
        } else {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.deferred.insert(tag, (node, Wire::Udp(out)));
            ctx.set_timer(done - ctx.now(), tag);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64) {
        if let Some((node, msg)) = self.deferred.remove(&tag) {
            ctx.send(node, msg);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
