//! Engine actors wrapping the server state machines: storage nodes,
//! directory servers, small-file servers, and block-service coordinators.
//!
//! Each actor charges calibrated CPU time for the work it performs, turns
//! protocol-level actions into network sends, and uses deferred-send
//! timers to model disk and log completion times computed by the
//! underlying state machines.

use slice_sim::FxHashMap;
use std::any::Any;

use slice_dirsvc::{DirAction, DirServer};
use slice_nfsproto::{
    decode_call, decode_reply, encode_reply, Fhandle, NfsProc, NfsRequest, Packet, ReplyBody,
    SockAddr, StableHow,
};
use slice_sim::{Actor, Ctx, EventKind, NodeId, SimDuration, SimTime, Subsystem, START_TAG};
use slice_smallfile::{SfAction, SfCtl, SmallFileServer};
use slice_storage::{CoordAction, Coordinator, StorageNode};

use crate::calib;
use crate::wire::{Router, Wire};

/// Schedules messages for future instants via timers.
#[derive(Debug, Default)]
struct DeferredSender {
    stash: FxHashMap<u64, (NodeId, Wire)>,
    next_tag: u64,
}

impl DeferredSender {
    fn send_at(&mut self, ctx: &mut Ctx<'_, Wire>, at: SimTime, to: NodeId, msg: Wire) {
        if at <= ctx.now() {
            ctx.send(to, msg);
        } else {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.stash.insert(tag, (to, msg));
            ctx.set_timer(at - ctx.now(), tag);
        }
    }

    /// Fires a deferred send; returns true if the tag belonged to us.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64) -> bool {
        if let Some((to, msg)) = self.stash.remove(&tag) {
            ctx.send(to, msg);
            true
        } else {
            false
        }
    }
}

fn payload_cpu(bytes: usize, per_4k: SimDuration) -> SimDuration {
    per_4k.mul_f64(bytes as f64 / 4096.0)
}

/// A duplicate request cache (DRC), the standard NFS server defence
/// against non-idempotent retransmissions: replies to recent requests are
/// cached by (client, xid) and replayed verbatim; requests still being
/// processed are dropped so a retry cannot re-execute them.
///
/// The cache stashes the *decoded* reply, not the encoded packet, and the
/// replay path re-encodes (deterministic, so the retransmitted bytes are
/// identical to the originals). Stashing the packet would keep a second
/// reference to its payload alive, which forced the µproxy's in-flight
/// attribute patch into a copy-on-write deep copy on *every* directory
/// reply — millions of copies per untar run to protect against a
/// retransmission that almost never comes. The decoded form shares
/// nothing with the wire path, so the packet the server actually sends is
/// the payload's sole owner and the µproxy patches it in place.
#[derive(Debug)]
pub struct ReplyCache {
    /// One map holds both phases of an entry's life (in progress, then
    /// done): the admit/complete pair on every request costs one hash
    /// lookup each instead of crossing a separate set and map.
    entries: FxHashMap<(u32, u16, u32), DrcEntry>,
    order: std::collections::VecDeque<(u32, u16, u32)>,
}

impl Default for ReplyCache {
    fn default() -> Self {
        // Headroom above the eviction capacity: at steady state every
        // request inserts one entry and evicts one, and hashbrown turns
        // each removal into a tombstone. Without slack the table
        // rehashes in place every ~capacity/2 requests just to reclaim
        // tombstones; 4x slack makes that reclaim ~8x rarer.
        ReplyCache {
            entries: FxHashMap::with_capacity_and_hasher(DRC_CAPACITY * 4, Default::default()),
            order: std::collections::VecDeque::with_capacity(DRC_CAPACITY + 1),
        }
    }
}

#[derive(Debug)]
enum DrcEntry {
    InProgress,
    Done(slice_nfsproto::NfsReply),
}

/// DRC capacity (completed entries).
const DRC_CAPACITY: usize = 2048;

/// Outcome of a DRC admission check.
pub enum DrcCheck {
    /// New request: process it.
    Fresh,
    /// Retransmission of a request still being served: drop it.
    InProgress,
    /// Retransmission of a completed request: re-encode and replay this
    /// reply (byte-identical to the original — same xid, same encoder).
    Replay(slice_nfsproto::NfsReply),
}

impl ReplyCache {
    fn key(src: SockAddr, xid: u32) -> (u32, u16, u32) {
        (src.ip, src.port, xid)
    }

    /// Checks an incoming call and registers it as in progress when fresh.
    pub fn admit(&mut self, src: SockAddr, xid: u32) -> DrcCheck {
        match self.entries.entry(Self::key(src, xid)) {
            std::collections::hash_map::Entry::Occupied(e) => match e.get() {
                DrcEntry::InProgress => DrcCheck::InProgress,
                DrcEntry::Done(reply) => DrcCheck::Replay(reply.clone()),
            },
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(DrcEntry::InProgress);
                DrcCheck::Fresh
            }
        }
    }

    /// Records the reply for a completed request.
    pub fn complete(&mut self, dst: SockAddr, xid: u32, reply: &slice_nfsproto::NfsReply) {
        let key = Self::key(dst, xid);
        let prev = self.entries.insert(key, DrcEntry::Done(reply.clone()));
        if !matches!(prev, Some(DrcEntry::Done(_))) {
            self.order.push_back(key);
            if self.order.len() > DRC_CAPACITY {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                }
            }
        }
    }

    /// Drops everything (server restart: the DRC is volatile).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// A network storage node actor.
pub struct StorageActor {
    /// The storage node state machine.
    pub node: StorageNode,
    addr: SockAddr,
    router: Router,
    deferred: DeferredSender,
    charge_cpu: bool,
}

impl StorageActor {
    /// Creates a storage actor serving at `addr`.
    pub fn new(node: StorageNode, addr: SockAddr, router: Router, charge_cpu: bool) -> Self {
        StorageActor {
            node,
            addr,
            router,
            deferred: DeferredSender::default(),
            charge_cpu,
        }
    }
}

impl Actor<Wire> for StorageActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, from: NodeId, msg: Wire) {
        match msg {
            Wire::Udp(pkt) => {
                let Ok((hdr, req)) = decode_call(&pkt.payload) else {
                    return;
                };
                if self.charge_cpu {
                    let bytes = match &req {
                        NfsRequest::Write { data, .. } => data.len(),
                        NfsRequest::Read { count, .. } => *count as usize,
                        _ => 0,
                    };
                    ctx.use_cpu(
                        calib::STORAGE_REQ_CPU + payload_cpu(bytes, calib::STORAGE_CPU_PER_4K),
                    );
                }
                let seeks_before = self.node.disk_seeks();
                let (done, reply) = self.node.handle_nfs(ctx.now(), &req);
                let (seeks, seek_ns) = self.node.disk_seeks();
                if seeks > seeks_before.0 {
                    ctx.trace(
                        Subsystem::Disk,
                        EventKind::DiskSeek {
                            node: ctx.node().0 as usize,
                            nanos: seek_ns - seeks_before.1,
                        },
                    );
                }
                let out = Packet::new(self.addr, pkt.src, encode_reply(hdr.xid, &reply));
                if let Some(node) = self.router.try_node_of(pkt.src) {
                    self.deferred.send_at(ctx, done, node, Wire::Udp(out));
                }
                // The decoded WRITE payload is dead once applied; recycle
                // it rather than dropping it on the allocator.
                if let NfsRequest::Write { data, .. } = req {
                    slice_sim::pool::give(data);
                }
            }
            Wire::Ctl(ctl) => {
                if self.charge_cpu {
                    ctx.use_cpu(calib::STORAGE_REQ_CPU);
                }
                let (done, reply) = self.node.handle_ctl(ctx.now(), &ctl);
                self.deferred
                    .send_at(ctx, done, from, Wire::CtlReply(reply));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64) {
        self.deferred.on_timer(ctx, tag);
    }

    fn on_fail(&mut self, _now: SimTime) {
        self.node.crash_restart();
        self.deferred.stash.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A directory server actor.
pub struct DirActor {
    /// The directory server state machine.
    pub server: DirServer,
    site: u32,
    addr: SockAddr,
    router: Router,
    dir_nodes: Vec<NodeId>,
    coord_node: Option<NodeId>,
    sf_nodes: Vec<NodeId>,
    deferred: DeferredSender,
    tokens: FxHashMap<u64, (SockAddr, u32)>,
    next_token: u64,
    next_req_id: u64,
    charge_cpu: bool,
    /// Routing-table generation this site's slot map corresponds to.
    pub table_generation: u64,
    /// Last activity instant (used as the crash point for recovery).
    last_seen: SimTime,
    /// WAL preserved across a crash (it lives in shared network storage).
    crashed_wal: Option<(slice_storage::Wal<slice_dirsvc::DirLog>, SimTime)>,
    drc: ReplyCache,
}

impl DirActor {
    /// Creates a directory actor for `site` at `addr`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        server: DirServer,
        site: u32,
        addr: SockAddr,
        router: Router,
        dir_nodes: Vec<NodeId>,
        coord_node: Option<NodeId>,
        sf_nodes: Vec<NodeId>,
        charge_cpu: bool,
    ) -> Self {
        DirActor {
            server,
            site,
            addr,
            router,
            dir_nodes,
            coord_node,
            sf_nodes,
            deferred: DeferredSender::default(),
            tokens: FxHashMap::default(),
            next_token: 1,
            next_req_id: 1,
            charge_cpu,
            table_generation: 1,
            last_seen: SimTime::ZERO,
            crashed_wal: None,
            drc: ReplyCache::default(),
        }
    }

    /// Small-file server index for a file (must agree with the µproxy's
    /// default table: FNV over the fileID).
    fn sf_index(&self, file: u64) -> usize {
        if self.sf_nodes.is_empty() {
            return 0;
        }
        slice_hashes::bucket_of(slice_hashes::fnv1a(&file.to_le_bytes()), 64) % self.sf_nodes.len()
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<DirAction>) {
        for action in actions {
            match action {
                DirAction::Reply { token, reply, at } => {
                    let Some((dst, xid)) = self.tokens.remove(&token) else {
                        continue;
                    };
                    // Stash the decoded reply before encoding: the sent
                    // packet keeps sole ownership of its payload, so the
                    // µproxy's attribute patch mutates it in place.
                    self.drc.complete(dst, xid, &reply);
                    let pkt = Packet::new(self.addr, dst, encode_reply(xid, &reply));
                    if let Some(node) = self.router.try_node_of(dst) {
                        self.deferred.send_at(ctx, at, node, Wire::Udp(pkt));
                    }
                }
                DirAction::Peer { site, msg } => {
                    let node = self.dir_nodes[site as usize % self.dir_nodes.len()];
                    ctx.send(
                        node,
                        Wire::Peer {
                            from_site: self.site,
                            msg,
                        },
                    );
                }
                DirAction::DataRemove { file, .. } => {
                    let req_id = self.next_req_id;
                    self.next_req_id += 1;
                    if let Some(coord) = self.coord_node {
                        ctx.send(
                            coord,
                            Wire::Coord(slice_storage::CoordMsg::RemoveFile { req_id, file }),
                        );
                    }
                    if !self.sf_nodes.is_empty() {
                        let node = self.sf_nodes[self.sf_index(file)];
                        ctx.send(node, Wire::SfCtl(SfCtl::Remove { file }));
                    }
                }
                DirAction::DataTruncate { file, size, .. } => {
                    let req_id = self.next_req_id;
                    self.next_req_id += 1;
                    if let Some(coord) = self.coord_node {
                        ctx.send(
                            coord,
                            Wire::Coord(slice_storage::CoordMsg::TruncateFile {
                                req_id,
                                file,
                                size,
                            }),
                        );
                    }
                    if !self.sf_nodes.is_empty() {
                        let node = self.sf_nodes[self.sf_index(file)];
                        ctx.send(node, Wire::SfCtl(SfCtl::Truncate { file, size }));
                    }
                }
            }
        }
    }
}

impl Actor<Wire> for DirActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, _from: NodeId, msg: Wire) {
        self.last_seen = ctx.now();
        match msg {
            Wire::Udp(pkt) => {
                let Ok((hdr, req)) = decode_call(&pkt.payload) else {
                    return;
                };
                if self.charge_cpu {
                    ctx.use_cpu(calib::DIR_OP_CPU);
                }
                match self.drc.admit(pkt.src, hdr.xid) {
                    DrcCheck::Replay(reply) => {
                        let out = Packet::new(self.addr, pkt.src, encode_reply(hdr.xid, &reply));
                        if let Some(node) = self.router.try_node_of(pkt.src) {
                            ctx.send(node, Wire::Udp(out));
                        }
                        return;
                    }
                    DrcCheck::InProgress => return,
                    DrcCheck::Fresh => {}
                }
                let token = self.next_token;
                self.next_token += 1;
                self.tokens.insert(token, (pkt.src, hdr.xid));
                let actions = self.server.handle_nfs(ctx.now(), token, &req);
                self.dispatch(ctx, actions);
            }
            Wire::Peer { from_site, msg } => {
                if self.charge_cpu {
                    ctx.use_cpu(calib::DIR_PEER_CPU);
                }
                let actions = self.server.handle_peer(ctx.now(), from_site, msg);
                self.dispatch(ctx, actions);
            }
            Wire::CoordReply(_) => {
                // Data-removal completions need no action here.
            }
            Wire::TableFetch => {
                ctx.send(
                    _from,
                    Wire::TableData {
                        slots: self.server.slot_map().to_vec(),
                        generation: self.table_generation,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64) {
        self.deferred.on_timer(ctx, tag);
    }

    fn on_fail(&mut self, now: SimTime) {
        // Volatile state is lost; the WAL survives in shared storage and
        // is replayed up to the crash instant.
        let wal = self.server.crash();
        self.crashed_wal = Some((wal, now));
        self.tokens.clear();
        self.deferred.stash.clear();
        self.drc.clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if let Some((wal, crash_time)) = self.crashed_wal.take() {
            // Fast failover: replay backing objects + log (paper §2.3).
            ctx.use_cpu(SimDuration::from_millis(50));
            self.server.recover(wal, crash_time);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A small-file server actor.
pub struct SmallFileActor {
    /// The small-file server state machine.
    pub server: SmallFileServer,
    addr: SockAddr,
    router: Router,
    storage_addrs: Vec<SockAddr>,
    tokens: FxHashMap<u64, (SockAddr, u32)>,
    /// Backing RPC xid -> (sf tag, read?).
    backing: FxHashMap<u32, (u64, bool)>,
    next_token: u64,
    next_xid: u32,
    charge_cpu: bool,
    last_seen: SimTime,
    crashed_wal: Option<(slice_storage::Wal<slice_smallfile::SfLog>, SimTime)>,
}

impl SmallFileActor {
    /// Creates a small-file actor at `addr`, issuing backing I/O to
    /// `storage_addrs` by site index.
    pub fn new(
        server: SmallFileServer,
        addr: SockAddr,
        router: Router,
        storage_addrs: Vec<SockAddr>,
        charge_cpu: bool,
    ) -> Self {
        SmallFileActor {
            server,
            addr,
            router,
            storage_addrs,
            tokens: FxHashMap::default(),
            backing: FxHashMap::default(),
            next_token: 1,
            next_xid: 1,
            charge_cpu,
            last_seen: SimTime::ZERO,
            crashed_wal: None,
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<SfAction>) {
        for action in actions {
            match action {
                SfAction::Reply { token, reply } => {
                    let Some((dst, xid)) = self.tokens.remove(&token) else {
                        continue;
                    };
                    let pkt = Packet::new(self.addr, dst, encode_reply(xid, &reply));
                    if let Some(node) = self.router.try_node_of(dst) {
                        ctx.send(node, Wire::Udp(pkt));
                    }
                }
                SfAction::BackingRead {
                    tag,
                    site,
                    obj,
                    offset,
                    len,
                } => {
                    let xid = self.next_xid;
                    self.next_xid = self.next_xid.wrapping_add(1);
                    self.backing.insert(xid, (tag, true));
                    let req = NfsRequest::Read {
                        fh: Fhandle::new(obj, 0, 0, 0, 0),
                        offset,
                        count: len,
                    };
                    let payload = slice_nfsproto::encode_call(
                        xid,
                        &slice_nfsproto::AuthUnix::default(),
                        &req,
                    );
                    let addr = self.storage_addrs[site as usize % self.storage_addrs.len()];
                    let pkt = Packet::new(self.addr, addr, payload);
                    if let Some(node) = self.router.try_node_of(addr) {
                        ctx.send(node, Wire::Udp(pkt));
                    }
                }
                SfAction::BackingWrite {
                    tag,
                    site,
                    obj,
                    offset,
                    data,
                    stable,
                } => {
                    let xid = self.next_xid;
                    self.next_xid = self.next_xid.wrapping_add(1);
                    if tag != 0 {
                        self.backing.insert(xid, (tag, false));
                    }
                    let req = NfsRequest::Write {
                        fh: Fhandle::new(obj, 0, 0, 0, 0),
                        offset,
                        stable: if stable {
                            StableHow::FileSync
                        } else {
                            StableHow::Unstable
                        },
                        data,
                    };
                    let payload = slice_nfsproto::encode_call(
                        xid,
                        &slice_nfsproto::AuthUnix::default(),
                        &req,
                    );
                    let addr = self.storage_addrs[site as usize % self.storage_addrs.len()];
                    let pkt = Packet::new(self.addr, addr, payload);
                    if let Some(node) = self.router.try_node_of(addr) {
                        ctx.send(node, Wire::Udp(pkt));
                    }
                }
            }
        }
    }
}

impl Actor<Wire> for SmallFileActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, _from: NodeId, msg: Wire) {
        self.last_seen = ctx.now();
        match msg {
            Wire::Udp(pkt) => {
                let Ok((_, msg_type)) = slice_nfsproto::peek_xid_type(&pkt.payload) else {
                    return;
                };
                if msg_type == slice_nfsproto::MSG_CALL {
                    let Ok((hdr, req)) = decode_call(&pkt.payload) else {
                        return;
                    };
                    if self.charge_cpu {
                        let bytes = match &req {
                            NfsRequest::Write { data, .. } => data.len(),
                            NfsRequest::Read { count, .. } => *count as usize,
                            _ => 0,
                        };
                        ctx.use_cpu(
                            calib::SF_OP_CPU + payload_cpu(bytes, calib::STORAGE_CPU_PER_4K),
                        );
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    self.tokens.insert(token, (pkt.src, hdr.xid));
                    let actions = self.server.handle_nfs(ctx.now(), token, req);
                    self.dispatch(ctx, actions);
                } else {
                    // A backing-I/O completion from a storage node.
                    let Ok((xid, _)) = slice_nfsproto::peek_xid_type(&pkt.payload) else {
                        return;
                    };
                    let Some((tag, is_read)) = self.backing.remove(&xid) else {
                        return;
                    };
                    let data = if is_read {
                        decode_reply(&pkt.payload, NfsProc::Read)
                            .ok()
                            .and_then(|(_, r)| match r.body {
                                ReplyBody::Read { data, .. } => Some(data),
                                _ => None,
                            })
                    } else {
                        let _ = decode_reply(&pkt.payload, NfsProc::Write);
                        None
                    };
                    if tag != 0 {
                        let actions = self.server.handle_backing_done(ctx.now(), tag, data);
                        self.dispatch(ctx, actions);
                    }
                }
            }
            Wire::SfCtl(ctl) => {
                if self.charge_cpu {
                    ctx.use_cpu(calib::SF_OP_CPU);
                }
                let actions = self.server.handle_ctl(ctx.now(), &ctl);
                self.dispatch(ctx, actions);
            }
            _ => {}
        }
    }

    fn on_fail(&mut self, now: SimTime) {
        let wal = self.server.crash();
        self.crashed_wal = Some((wal, now));
        self.tokens.clear();
        self.backing.clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if let Some((wal, crash_time)) = self.crashed_wal.take() {
            ctx.use_cpu(SimDuration::from_millis(50));
            self.server.recover(wal, crash_time);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const COORD_SWEEP_TAG: u64 = 1 << 41;
const COORD_SWEEP_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// A block-service coordinator actor.
pub struct CoordActor {
    /// The coordinator state machine.
    pub coord: Coordinator,
    storage_nodes: Vec<NodeId>,
    deferred: DeferredSender,
    charge_cpu: bool,
    last_seen: SimTime,
    crashed_wal: Option<(slice_storage::Wal<slice_storage::IntentRecord>, SimTime)>,
    /// True while the timeout sweep timer is pending. The sweep only runs
    /// while intentions are open — an idle coordinator must not keep the
    /// event queue alive forever.
    sweep_armed: bool,
    /// Actions produced by quiesced direct mutation (the ensemble's
    /// reconfiguration drivers call into `coord` between engine steps);
    /// dispatched at the next kick, when a `Ctx` is available.
    pending_reconf: Vec<CoordAction>,
}

impl CoordActor {
    /// Creates a coordinator actor over the given storage nodes.
    pub fn new(coord: Coordinator, storage_nodes: Vec<NodeId>, charge_cpu: bool) -> Self {
        CoordActor {
            coord,
            storage_nodes,
            deferred: DeferredSender::default(),
            charge_cpu,
            last_seen: SimTime::ZERO,
            crashed_wal: None,
            sweep_armed: false,
            pending_reconf: Vec::new(),
        }
    }

    /// Queues coordinator actions produced outside an engine step; they
    /// are dispatched at the next kick (`START_TAG`).
    pub fn stash_reconf(&mut self, actions: Vec<CoordAction>) {
        self.pending_reconf.extend(actions);
    }

    fn arm_sweep_if_busy(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if !self.sweep_armed && self.coord.needs_sweep() {
            ctx.set_timer(COORD_SWEEP_INTERVAL, COORD_SWEEP_TAG);
            self.sweep_armed = true;
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<CoordAction>) {
        for action in actions {
            match action {
                CoordAction::Reply { to, reply, at } => {
                    self.deferred
                        .send_at(ctx, at, NodeId(to as u32), Wire::CoordReply(reply));
                }
                CoordAction::SendCtl { site, ctl } => {
                    let node = self.storage_nodes[site as usize % self.storage_nodes.len()];
                    ctx.send(node, Wire::Ctl(ctl));
                }
            }
        }
        // Surface resynchronization progress in the trace stream and the
        // metrics registry (slice-ha availability timeline).
        for (site, done, _at, bytes) in self.coord.take_resync_events() {
            if done {
                ctx.obs().registry.add("coord.resyncs_completed", 1);
                ctx.trace(
                    Subsystem::Coord,
                    EventKind::ResyncDone {
                        site: site as usize,
                        bytes,
                    },
                );
            } else {
                ctx.obs().registry.add("coord.resyncs_started", 1);
                ctx.trace(
                    Subsystem::Coord,
                    EventKind::ResyncStart {
                        site: site as usize,
                    },
                );
            }
        }
    }
}

impl Actor<Wire> for CoordActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, from: NodeId, msg: Wire) {
        self.last_seen = ctx.now();
        match msg {
            Wire::Coord(m) => {
                if self.charge_cpu {
                    ctx.use_cpu(calib::COORD_MSG_CPU);
                }
                let actions = self.coord.handle(ctx.now(), u64::from(from.0), m);
                self.dispatch(ctx, actions);
                self.arm_sweep_if_busy(ctx);
            }
            Wire::CtlReply(reply) => {
                if self.charge_cpu {
                    ctx.use_cpu(calib::COORD_MSG_CPU);
                }
                let site = self
                    .storage_nodes
                    .iter()
                    .position(|&n| n == from)
                    .map(|p| p as u32)
                    .unwrap_or(0);
                let actions = self.coord.handle_ctl_reply(ctx.now(), site, reply);
                self.dispatch(ctx, actions);
                self.arm_sweep_if_busy(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, tag: u64) {
        if tag == COORD_SWEEP_TAG {
            self.sweep_armed = false;
            let actions = self.coord.check_timeouts(ctx.now());
            self.dispatch(ctx, actions);
            self.arm_sweep_if_busy(ctx);
            return;
        }
        if tag == START_TAG {
            if !self.pending_reconf.is_empty() {
                let stashed = std::mem::take(&mut self.pending_reconf);
                self.dispatch(ctx, stashed);
            }
            self.arm_sweep_if_busy(ctx);
            return;
        }
        self.deferred.on_timer(ctx, tag);
    }

    fn on_fail(&mut self, now: SimTime) {
        let wal = self.coord.crash();
        self.crashed_wal = Some((wal, now));
        self.deferred.stash.clear();
        // Undelivered reconfiguration actions die with the crash; WAL
        // replay reconstructs the retirement state that produced them.
        self.pending_reconf.clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if let Some((wal, crash_time)) = self.crashed_wal.take() {
            ctx.use_cpu(SimDuration::from_millis(20));
            // Recovery scans the intentions log and probes participants
            // for operations in progress at the crash (paper §3.3.2).
            let actions = self.coord.recover(ctx.now(), wal, crash_time);
            self.dispatch(ctx, actions);
        }
        self.sweep_armed = false;
        self.arm_sweep_if_busy(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
