//! Ensemble assembly: builds a complete Slice deployment (or a baseline
//! single-server deployment) inside a simulation engine.

use slice_dirsvc::{DirServer, DirServerConfig, NamePolicy};
use slice_nfsproto::AuthUnix;
use slice_sim::{Engine, NetConfig, NodeId, SimDuration, SimTime};
use slice_smallfile::{SmallFileConfig, SmallFileServer};
use slice_storage::{Coordinator, Placement, StorageNode, StorageNodeConfig};
use slice_uproxy::{ProxyConfig, ProxyNamePolicy, Uproxy};

use crate::actors::{CoordActor, DirActor, SmallFileActor, StorageActor};
use crate::baseline::{BaselineActor, BaselineKind, MonoFs};
use crate::calib;
use crate::client::{ClientActor, ClientConfig, Workload};
use crate::wire::{AddrPlan, Router, Wire};

/// How far past client completion `run_to_completion` keeps stepping to
/// drain background work when the event queue never empties (liveness
/// probes re-arm forever). Must exceed [`calib::ATTR_WRITEBACK`] plus
/// one maintenance tick so every dirty attribute flushes before the
/// quiescence oracles run.
const DRAIN_HORIZON: SimDuration = SimDuration::from_secs(10);

/// Name-space policy for a whole ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsemblePolicy {
    /// Mkdir switching with redirect probability `redirect_millis / 1000`.
    MkdirSwitching {
        /// p × 1000.
        redirect_millis: u32,
    },
    /// Name hashing.
    NameHashing,
}

/// Configuration for a Slice ensemble.
#[derive(Debug, Clone)]
pub struct SliceConfig {
    /// Number of client nodes (each with an embedded µproxy).
    pub clients: usize,
    /// Number of directory servers.
    pub dir_servers: usize,
    /// Number of small-file servers (0 disables the threshold split).
    pub sf_servers: usize,
    /// Number of network storage nodes.
    pub storage_nodes: usize,
    /// Number of block-service coordinators.
    pub coordinators: usize,
    /// Disk arms per storage node.
    pub disks_per_node: usize,
    /// Name-space policy.
    pub policy: EnsemblePolicy,
    /// Retain file contents (tests) or metadata only (big benchmarks).
    pub retain_data: bool,
    /// Charge calibrated CPU costs (off for pure protocol tests).
    pub charge_cpu: bool,
    /// Record per-client op histories for the `slice-check` oracles.
    pub record_history: bool,
    /// Small-file server cache bytes.
    pub sf_cache_bytes: u64,
    /// Storage node cache bytes.
    pub storage_cache_bytes: u64,
    /// Wrap multisite commits in coordinator intentions.
    pub use_intents: bool,
    /// Route bulk I/O through coordinator block maps.
    pub use_block_maps: bool,
    /// Stripe unit for static placement (bytes).
    pub stripe_unit: u64,
    /// Erasure-coded layout `(n, k)` for mapped files' bulk regions:
    /// every stripe is split into k data + n−k parity shards across n
    /// disjoint sites. Implies block maps. `None` keeps mirroring.
    pub coded: Option<(u32, u32)>,
    /// Give mapped (block-map) files two-way mirrored placement instead
    /// of single-copy striping. Required for demand-driven replica
    /// widening and join rebalance, which operate on mirrored entries.
    /// Ignored when `coded` is set.
    pub mapped_mirror: bool,
    /// Group commit on file-manager write-ahead logs (ablation knob).
    pub wal_group_commit: bool,
    /// µproxy suspected-site probe cadence in milliseconds (how quickly a
    /// recovered mirror can rejoin the read rotation).
    pub probe_interval_ms: u64,
    /// Storage sites initially in the placement rotation; the rest start
    /// as standby spares eligible for online join. `None` activates all.
    pub active_storage: Option<usize>,
    /// µproxy hot-set detection window in milliseconds (two half-window
    /// buckets; see `Uproxy::hot_files`).
    pub hot_window_ms: u64,
    /// Engine shards: partitions the nodes across this many worker
    /// threads (conservative windowed parallel DES). Output is
    /// byte-identical at any value; 1 runs serially. Each node class is
    /// distributed round-robin so every shard carries a mix of clients,
    /// servers, and storage.
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            clients: 1,
            dir_servers: 1,
            sf_servers: 2,
            storage_nodes: 4,
            coordinators: 1,
            disks_per_node: calib::DISKS_PER_NODE,
            policy: EnsemblePolicy::MkdirSwitching {
                redirect_millis: 250,
            },
            retain_data: true,
            charge_cpu: true,
            record_history: false,
            sf_cache_bytes: calib::SF_CACHE_BYTES,
            storage_cache_bytes: calib::STORAGE_CACHE_BYTES,
            use_intents: true,
            use_block_maps: false,
            stripe_unit: 64 * 1024,
            coded: None,
            mapped_mirror: false,
            wal_group_commit: true,
            probe_interval_ms: 2000,
            active_storage: None,
            hot_window_ms: 10_000,
            shards: 1,
            seed: 42,
        }
    }
}

impl SliceConfig {
    /// Checks the configuration for geometric consistency before any
    /// ensemble state is built. [`SliceEnsemble::build`] calls this and
    /// panics with the returned message; callers that accept untrusted
    /// shapes (CLI flags, sweep generators) should call it themselves and
    /// surface the `Err` instead of hitting an assert deep inside the
    /// erasure-coding layout.
    pub fn validate(&self) -> Result<(), String> {
        if self.dir_servers == 0 {
            return Err("need at least one directory server".into());
        }
        if self.storage_nodes == 0 {
            return Err("need at least one storage node".into());
        }
        let active = self.active_storage.unwrap_or(self.storage_nodes);
        if active == 0 || active > self.storage_nodes {
            return Err(format!(
                "active_storage={active} must be in 1..={} (total storage nodes)",
                self.storage_nodes
            ));
        }
        if let Some((n, k)) = self.coded {
            if k == 0 || k >= n || n > 128 {
                return Err(format!(
                    "invalid coded layout (n,k)=({n},{k}): need 0 < k < n <= 128 \
                     (k data shards plus n-k parity shards per stripe)"
                ));
            }
            if n - k > k {
                return Err(format!(
                    "invalid coded layout (n,k)=({n},{k}): n-k={} parity shards exceed \
                     the k={k} data shards, so parity offsets would spill past the \
                     stripe's extent; choose n <= 2k",
                    n - k
                ));
            }
            if active < n as usize {
                return Err(format!(
                    "coded (n,k)=({n},{k}) needs at least n={n} active storage sites, \
                     have {active}"
                ));
            }
            if !self.stripe_unit.is_multiple_of(u64::from(k)) {
                return Err(format!(
                    "stripe unit {} must divide into k={k} equal shards",
                    self.stripe_unit
                ));
            }
            if self.coordinators == 0 {
                return Err("coded layouts need a coordinator".into());
            }
        }
        if self.mapped_mirror && self.coded.is_none() && active < 2 {
            return Err(format!(
                "mapped_mirror needs at least 2 active storage sites for the \
                 two-way mirror, have {active}"
            ));
        }
        Ok(())
    }
}

/// Distributes each node class round-robin across `shards` shards, so the
/// heavy classes (clients, storage) spread evenly instead of clumping.
fn round_robin_assignment(classes: &[&[NodeId]], shards: usize) -> Vec<u32> {
    let total: usize = classes.iter().map(|c| c.len()).sum();
    let mut assignment = vec![0u32; total];
    for ids in classes {
        for (j, &id) in ids.iter().enumerate() {
            assignment[id.0 as usize] = (j % shards) as u32;
        }
    }
    assignment
}

/// A built Slice ensemble.
pub struct SliceEnsemble {
    /// The simulation engine.
    pub engine: Engine<Wire>,
    /// The address plan.
    pub plan: AddrPlan,
    /// Client node ids (one per workload).
    pub clients: Vec<NodeId>,
    /// Directory server node ids.
    pub dirs: Vec<NodeId>,
    /// Small-file server node ids.
    pub sfs: Vec<NodeId>,
    /// Storage node ids.
    pub storage: Vec<NodeId>,
    /// Coordinator node ids.
    pub coords: Vec<NodeId>,
    /// This thread's payload copy counters sampled at build time; the
    /// delta at `collect_obs` attributes copy traffic to this ensemble.
    /// Valid because an ensemble is built, run, and harvested on one
    /// thread (the slice-par runtime keeps each scenario on one worker);
    /// the process-wide atomics in `slice-nfsproto` stay available as a
    /// cross-check that no traffic escaped attribution.
    payload_base: (u64, u64, u64),
}

impl SliceEnsemble {
    /// Builds an ensemble; `workloads` supplies one driver per client.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != cfg.clients` or a size is zero where
    /// one is required.
    pub fn build(cfg: &SliceConfig, workloads: Vec<Box<dyn Workload>>) -> Self {
        assert_eq!(workloads.len(), cfg.clients, "one workload per client");
        if let Err(e) = cfg.validate() {
            panic!("invalid SliceConfig: {e}");
        }
        // Coded layouts route through coordinator block maps; the µproxy
        // and coordinator must agree on the placement geometry.
        let use_block_maps = cfg.use_block_maps || cfg.coded.is_some();
        let plan = AddrPlan::new(
            cfg.clients,
            cfg.dir_servers,
            cfg.sf_servers,
            cfg.storage_nodes,
        );
        let mut engine: Engine<Wire> = Engine::new(NetConfig::gigabit(), cfg.seed);

        // Node ids are assigned sequentially; predict them so every actor
        // can carry a complete router from birth.
        let mut next = 0u32;
        let mut take = |n: usize| -> Vec<NodeId> {
            let v: Vec<NodeId> = (0..n).map(|i| NodeId(next + i as u32)).collect();
            next += n as u32;
            v
        };
        let client_ids = take(cfg.clients);
        let dir_ids = take(cfg.dir_servers);
        let sf_ids = take(cfg.sf_servers);
        let storage_ids = take(cfg.storage_nodes);
        let coord_ids = take(cfg.coordinators);

        let mut router = Router::new();
        for (i, &id) in client_ids.iter().enumerate() {
            router.register(plan.clients[i], id);
        }
        for (i, &id) in dir_ids.iter().enumerate() {
            router.register(plan.dirs[i], id);
        }
        for (i, &id) in sf_ids.iter().enumerate() {
            router.register(plan.sfs[i], id);
        }
        for (i, &id) in storage_ids.iter().enumerate() {
            router.register(plan.storage[i], id);
        }

        let name_policy = match cfg.policy {
            EnsemblePolicy::MkdirSwitching { redirect_millis } => {
                ProxyNamePolicy::MkdirSwitching { redirect_millis }
            }
            EnsemblePolicy::NameHashing => ProxyNamePolicy::NameHashing,
        };
        let dir_policy = match cfg.policy {
            EnsemblePolicy::MkdirSwitching { .. } => NamePolicy::MkdirSwitching,
            EnsemblePolicy::NameHashing => NamePolicy::NameHashing,
        };

        // Clients.
        for (i, workload) in workloads.into_iter().enumerate() {
            let proxy_cfg = ProxyConfig {
                virtual_addr: plan.virtual_addr,
                client_addr: plan.clients[i],
                dir_sites: plan.dirs.clone(),
                sf_sites: plan.sfs.clone(),
                storage_sites: plan.storage.clone(),
                coord_sites: cfg.coordinators as u32,
                name_policy,
                threshold: slice_smallfile::SF_THRESHOLD,
                stripe_unit: cfg.stripe_unit,
                mirror_copies: 2,
                coded: cfg.coded,
                use_block_maps,
                use_intents: cfg.use_intents,
                attr_cache_entries: 4096,
                writeback_interval: calib::ATTR_WRITEBACK,
                suspect_after: 2,
                probe_interval: SimDuration::from_millis(cfg.probe_interval_ms.max(1)),
                hot_window: SimDuration::from_millis(cfg.hot_window_ms.max(1)),
                // Wall-clock phase timing would inject nondeterminism
                // into the seeded simulation; Table 3 measures it in a
                // standalone harness instead.
                measure_phases: false,
            };
            let client_cfg = ClientConfig {
                addr: plan.clients[i],
                server_addr: plan.virtual_addr,
                cred: AuthUnix {
                    machine: format!("client{i}"),
                    ..Default::default()
                },
                charge_cpu: cfg.charge_cpu,
                record_history: cfg.record_history,
            };
            let actor = ClientActor::new(
                client_cfg,
                Some(Uproxy::new(proxy_cfg)),
                router.clone(),
                coord_ids.clone(),
                workload,
            );
            let id = engine.add_node(&format!("client{i}"), Box::new(actor));
            assert_eq!(id, client_ids[i]);
        }
        // Directory servers.
        for (i, &expect) in dir_ids.iter().enumerate() {
            let ds = DirServer::new(DirServerConfig {
                site: i as u32,
                sites: cfg.dir_servers as u32,
                policy: dir_policy,
                clock_skew: SimDuration::from_micros(i as u64 * 3),
                wal: slice_storage::WalParams {
                    batched: cfg.wal_group_commit,
                    ..Default::default()
                },
                default_mapped: use_block_maps,
            });
            let actor = DirActor::new(
                ds,
                i as u32,
                plan.dirs[i],
                router.clone(),
                dir_ids.clone(),
                coord_ids.first().copied(),
                sf_ids.clone(),
                cfg.charge_cpu,
            );
            let id = engine.add_node(&format!("dir{i}"), Box::new(actor));
            assert_eq!(id, expect);
        }
        // Small-file servers.
        for (i, &expect) in sf_ids.iter().enumerate() {
            let sf = SmallFileServer::new(SmallFileConfig {
                server_id: i as u32,
                storage_sites: cfg.storage_nodes as u32,
                cache_bytes: cfg.sf_cache_bytes,
                retain_data: cfg.retain_data,
            });
            let actor = SmallFileActor::new(
                sf,
                plan.sfs[i],
                router.clone(),
                plan.storage.clone(),
                cfg.charge_cpu,
            );
            let id = engine.add_node(&format!("sf{i}"), Box::new(actor));
            assert_eq!(id, expect);
        }
        // Storage nodes.
        for (i, &expect) in storage_ids.iter().enumerate() {
            let node = StorageNode::new(&StorageNodeConfig {
                disks: cfg.disks_per_node,
                disk_params: calib::disk_params(),
                channel_bps: calib::STORAGE_CHANNEL_BPS,
                cache_bytes: cfg.storage_cache_bytes,
                retain_data: cfg.retain_data,
            });
            let actor = StorageActor::new(node, plan.storage[i], router.clone(), cfg.charge_cpu);
            let id = engine.add_node(&format!("storage{i}"), Box::new(actor));
            assert_eq!(id, expect);
        }
        // Coordinators.
        for (i, &expect) in coord_ids.iter().enumerate() {
            let mut coordinator = Coordinator::new(cfg.storage_nodes as u32);
            if let Some(a) = cfg.active_storage {
                coordinator.set_active_sites(a as u32);
            }
            if let Some((n, k)) = cfg.coded {
                coordinator.set_default_placement(Placement::Coded { n, k });
                coordinator.set_stripe_unit(cfg.stripe_unit);
            } else if cfg.mapped_mirror {
                coordinator.set_default_placement(Placement::Mirrored { copies: 2 });
                coordinator.set_stripe_unit(cfg.stripe_unit);
            }
            let actor = CoordActor::new(coordinator, storage_ids.clone(), cfg.charge_cpu);
            let id = engine.add_node(&format!("coord{i}"), Box::new(actor));
            assert_eq!(id, expect);
        }
        for &c in &coord_ids {
            engine.kick(c);
        }
        for (i, &c) in client_ids.iter().enumerate() {
            let _ = i;
            engine
                .actor_mut::<ClientActor>(c)
                .set_dir_table_source(dir_ids[0]);
        }
        let total_nodes =
            client_ids.len() + dir_ids.len() + sf_ids.len() + storage_ids.len() + coord_ids.len();
        let shards = cfg.shards.max(1).min(total_nodes.max(1));
        if shards > 1 {
            let assignment = round_robin_assignment(
                &[&client_ids, &dir_ids, &sf_ids, &storage_ids, &coord_ids],
                shards,
            );
            engine.set_shards(shards, &assignment);
        }
        engine.set_payload_probe(std::sync::Arc::new(
            slice_nfsproto::bytes::local_clone_stats,
        ));
        SliceEnsemble {
            engine,
            plan,
            clients: client_ids,
            dirs: dir_ids,
            sfs: sf_ids,
            storage: storage_ids,
            coords: coord_ids,
            payload_base: slice_nfsproto::bytes::local_clone_stats(),
        }
    }

    /// Starts every client's workload.
    pub fn start(&mut self) {
        for &c in &self.clients.clone() {
            self.engine.kick(c);
        }
    }

    /// Runs until every client's workload reports finished and the
    /// trailing background work (attribute write-backs, probes) drains,
    /// the event queue empties, or `deadline` passes. Returns the finish
    /// time.
    ///
    /// Advances in whole simulated seconds of *unbudgeted* run
    /// ([`slice_sim::Engine::run_until`]): an unbudgeted run lets the
    /// serial engine cover each step with a single window and the sharded
    /// engine widen windows adaptively, while the between-step check
    /// keeps idle background timers from being simulated all the way to a
    /// distant deadline. Once the clients finish, the drain keeps
    /// stepping until the event queue empties so callers observe
    /// quiescence (the attr-cache dirty oracle depends on it) — but for
    /// at most [`DRAIN_HORIZON`] of simulated time, because
    /// self-rearming periodic timers (liveness probes) never let the
    /// queue empty and an event-budgeted drain would ride them
    /// arbitrarily far past the finish. The horizon comfortably covers
    /// an attribute write-back interval plus the maintenance tick that
    /// flushes it. Step boundaries — and therefore the returned finish
    /// time — are shard-count-invariant.
    pub fn run_to_completion(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let step = (self.engine.now() + SimDuration::from_secs(1)).min(deadline);
            self.engine.run_until(step);
            let done = self
                .clients
                .iter()
                .all(|&c| self.engine.actor::<ClientActor>(c).finished());
            if done {
                let drain_cap = self.engine.now() + DRAIN_HORIZON;
                while self.engine.live_events() > 0 && self.engine.now() < drain_cap {
                    let step = (self.engine.now() + SimDuration::from_secs(1)).min(drain_cap);
                    self.engine.run_until(step);
                }
                return self.engine.now();
            }
            if self.engine.now() >= deadline || self.engine.live_events() == 0 {
                return self.engine.now();
            }
        }
    }

    /// Client actor access.
    pub fn client(&self, i: usize) -> &ClientActor {
        self.engine.actor::<ClientActor>(self.clients[i])
    }

    /// Mutable client actor access.
    pub fn client_mut(&mut self, i: usize) -> &mut ClientActor {
        self.engine.actor_mut::<ClientActor>(self.clients[i])
    }

    /// Brings a crashed storage node back online and triggers the
    /// coordinator-driven resynchronization of any regions that diverged
    /// during its outage. The node rejoins the mirrored-read rotation
    /// once resync drains and the µproxies' probes come back clean.
    pub fn recover_storage_node(&mut self, i: usize) {
        let node = self.storage[i];
        self.engine.recover_node(node);
        for &c in &self.coords.clone() {
            self.engine
                .actor_mut::<crate::actors::CoordActor>(c)
                .coord
                .kick_resync(i as u32);
            // START_TAG re-arms the coordinator's sweep timer, which
            // drives the resync state machine forward.
            self.engine.kick(c);
        }
    }

    /// Flushes every client µproxy's block-map cache (the routing-table
    /// epoch swap of paper §3.3): the next mapped I/O re-fetches the
    /// reconfigured entries from the coordinator.
    pub fn flush_map_caches(&mut self) {
        for &c in &self.clients.clone() {
            if let Some(p) = self.engine.actor_mut::<ClientActor>(c).proxy_mut() {
                p.flush_map_cache();
            }
        }
    }

    /// Re-arms every coordinator's sweep timer; stashed reconfiguration
    /// actions flush on the kick and open migrations drive to completion.
    fn kick_coords(&mut self) {
        for &c in &self.coords.clone() {
            self.engine.kick(c);
        }
    }

    /// Widens the named file's mirror set by one replica per coordinator
    /// holding it: the new copy is pinned into the block map and filled
    /// through the dirty-region resync path, and µproxy read rotation
    /// picks it up once the migration log drains. Returns the number of
    /// block migrations queued.
    pub fn widen_file(&mut self, file: u64) -> usize {
        let now = self.engine.now();
        let mut queued = 0;
        for &c in &self.coords.clone() {
            queued += self
                .engine
                .actor_mut::<CoordActor>(c)
                .coord
                .widen_file(now, file);
        }
        self.flush_map_caches();
        self.kick_coords();
        queued
    }

    /// Brings a standby storage site into the placement rotation and
    /// queues the background rebalance that moves a share of existing
    /// block-map entries onto it. Returns the migrations queued.
    pub fn join_storage_node(&mut self, i: usize) -> usize {
        let now = self.engine.now();
        let mut queued = 0;
        for &c in &self.coords.clone() {
            queued += self
                .engine
                .actor_mut::<CoordActor>(c)
                .coord
                .join_site(now, i as u32);
        }
        self.flush_map_caches();
        self.kick_coords();
        queued
    }

    /// Starts a planned drain of a storage site: every block-map entry
    /// referencing it is migrated to a replacement replica, and the site
    /// retires once its migration log drains (distinct from a crash — the
    /// site keeps serving reads while draining). Returns the migrations
    /// queued; poll [`SliceEnsemble::migrations_pending`] and then call
    /// [`SliceEnsemble::retire_storage_node`] to finish the client side.
    pub fn drain_storage_node(&mut self, i: usize) -> usize {
        let now = self.engine.now();
        let mut queued = 0;
        for &c in &self.coords.clone() {
            let actor = self.engine.actor_mut::<CoordActor>(c);
            let (q, actions) = actor.coord.drain_site(now, i as u32);
            actor.stash_reconf(actions);
            queued += q;
        }
        self.flush_map_caches();
        self.kick_coords();
        queued
    }

    /// Completes the client-visible half of a drain once every
    /// coordinator reports the site retired: µproxies drop it from the
    /// read rotation and fan-outs and purge its suspicion soft state.
    /// Returns false (and does nothing) while any coordinator still holds
    /// the site un-retired.
    pub fn retire_storage_node(&mut self, i: usize) -> bool {
        let all_retired = self.coords.iter().all(|&c| {
            self.engine
                .actor::<CoordActor>(c)
                .coord
                .is_retired(i as u32)
        });
        if !all_retired {
            return false;
        }
        let now = self.engine.now();
        for &c in &self.clients.clone() {
            if let Some(p) = self.engine.actor_mut::<ClientActor>(c).proxy_mut() {
                p.retire_site(now, i as u32);
            }
        }
        self.flush_map_caches();
        true
    }

    /// Outstanding migration ranges across every coordinator.
    pub fn migrations_pending(&self) -> usize {
        self.coords
            .iter()
            .map(|&c| {
                self.engine
                    .actor::<CoordActor>(c)
                    .coord
                    .migrations_pending()
            })
            .sum()
    }

    /// Bytes copied by completed migrations across every coordinator.
    pub fn migrated_bytes(&self) -> u64 {
        self.coords
            .iter()
            .map(|&c| self.engine.actor::<CoordActor>(c).coord.migrated_bytes())
            .sum()
    }

    /// Files whose data-op count over the sliding hot window reaches
    /// `min`, merged across every client µproxy; hottest first.
    pub fn hot_files(&self, min: u64) -> Vec<(u64, u64)> {
        self.merge_hot(min, |p| p.hot_files(1))
    }

    /// Directories whose name-op count over the sliding hot window
    /// reaches `min`, merged across every client µproxy; hottest first.
    pub fn hot_dirs(&self, min: u64) -> Vec<(u64, u64)> {
        self.merge_hot(min, |p| p.hot_dirs(1))
    }

    fn merge_hot(&self, min: u64, f: impl Fn(&Uproxy) -> Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        let mut merged: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for &c in &self.clients {
            if let Some(p) = self.engine.actor::<ClientActor>(c).proxy() {
                for (id, n) in f(p) {
                    *merged.entry(id).or_insert(0) += n;
                }
            }
        }
        let mut out: Vec<(u64, u64)> = merged.into_iter().filter(|&(_, n)| n >= min).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Every client's recorded op history, in client order (empty unless
    /// the ensemble was built with `record_history`).
    pub fn histories(&self) -> Vec<&crate::history::OpHistory> {
        self.clients
            .iter()
            .map(|&c| self.engine.actor::<ClientActor>(c).history())
            .collect()
    }

    /// Folds every component's statistics into the engine's slice-obs
    /// registry. Every value is written with absolute (`set`) semantics,
    /// so collecting repeatedly — e.g. once mid-run and once at the end —
    /// never double-counts.
    pub fn collect_obs(&mut self) {
        // Harvest component stats first (immutable borrows), then write.
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<(String, f64)> = Vec::new();

        for (i, &c) in self.clients.iter().enumerate() {
            let actor = self.engine.actor::<ClientActor>(c);
            let s = actor.stats();
            let p = format!("client.{i}");
            counters.push((format!("{p}.ops"), s.ops));
            counters.push((format!("{p}.bytes_read"), s.bytes_read));
            counters.push((format!("{p}.bytes_written"), s.bytes_written));
            counters.push((format!("{p}.retransmits"), s.retransmits));
            counters.push((format!("{p}.timeouts"), s.timeouts));
        }
        for (i, &d) in self.dirs.iter().enumerate() {
            let srv = &self.engine.actor::<crate::actors::DirActor>(d).server;
            let p = format!("dirsvc.{i}");
            counters.push((format!("{p}.ops_served"), srv.ops_served()));
            counters.push((format!("{p}.peer_ops"), srv.peer_ops()));
            counters.push((format!("{p}.multisite_ops"), srv.multisite_ops()));
            counters.push((format!("{p}.misdirected"), srv.misdirected()));
            counters.push((format!("{p}.name_cells"), srv.name_cells() as u64));
            let (appends, bytes, syncs) = srv.wal_stats();
            counters.push((format!("{p}.wal.appends"), appends));
            counters.push((format!("{p}.wal.bytes"), bytes));
            counters.push((format!("{p}.wal.syncs"), syncs));
        }
        for (i, &s) in self.sfs.iter().enumerate() {
            let srv = &self.engine.actor::<crate::actors::SmallFileActor>(s).server;
            let p = format!("smallfile.{i}");
            counters.push((format!("{p}.served"), srv.served()));
            gauges.push((format!("{p}.cache_hit_ratio"), srv.cache_hit_ratio()));
            let (zones, spills) = srv.alloc_stats();
            counters.push((format!("{p}.alloc.zones"), zones));
            counters.push((format!("{p}.alloc.spills"), spills));
        }
        for (i, &s) in self.storage.iter().enumerate() {
            let node = &self.engine.actor::<crate::actors::StorageActor>(s).node;
            let p = format!("storage.{i}");
            let (reads, writes) = node.op_counts();
            counters.push((format!("{p}.reads"), reads));
            counters.push((format!("{p}.writes"), writes));
            gauges.push((format!("{p}.cache_hit_ratio"), node.cache_hit_ratio()));
            let (dr, dw, db, dseq) = node.disk_stats();
            counters.push((format!("{p}.disk.reads"), dr));
            counters.push((format!("{p}.disk.writes"), dw));
            counters.push((format!("{p}.disk.bytes"), db));
            counters.push((format!("{p}.disk.seq_hits"), dseq));
            let (seeks, seek_ns) = node.disk_seeks();
            counters.push((format!("{p}.disk.seeks"), seeks));
            counters.push((format!("{p}.disk.seek_ns"), seek_ns));
        }
        for (i, &c) in self.coords.iter().enumerate() {
            let coord = &self.engine.actor::<crate::actors::CoordActor>(c).coord;
            let p = format!("coord.{i}");
            counters.push((format!("{p}.open_intents"), coord.open_intents() as u64));
            counters.push((format!("{p}.resolutions"), coord.resolutions().len() as u64));
            counters.push((format!("{p}.dirty_ranges"), coord.dirty_ranges() as u64));
            counters.push((format!("{p}.resyncs"), coord.resync_history().len() as u64));
            counters.push((format!("{p}.resync_bytes"), coord.resync_bytes()));
            counters.push((
                format!("{p}.migrations_pending"),
                coord.migrations_pending() as u64,
            ));
            counters.push((format!("{p}.migrated_bytes"), coord.migrated_bytes()));
            counters.push((format!("{p}.pinned_entries"), coord.pinned_entries() as u64));
            counters.push((
                format!("{p}.retired_sites"),
                coord.retired_sites().len() as u64,
            ));
            counters.push((
                format!("{p}.drains_done"),
                coord.reconf_history().len() as u64,
            ));
            let (appends, bytes, syncs) = coord.wal_stats();
            counters.push((format!("{p}.wal.appends"), appends));
            counters.push((format!("{p}.wal.bytes"), bytes));
            counters.push((format!("{p}.wal.syncs"), syncs));
        }

        // µproxies fold themselves (they own their own counter names).
        // The registry is taken out of the engine for the duration so the
        // actor borrow and the registry borrow do not overlap.
        for (i, &c) in self.clients.iter().enumerate() {
            let mut reg = std::mem::take(&mut self.engine.obs_mut().registry);
            if let Some(proxy) = self.engine.actor::<ClientActor>(c).proxy() {
                proxy.export_metrics(&format!("client.{i}.uproxy"), &mut reg);
            }
            self.engine.obs_mut().registry = reg;
        }

        // Per-engine payload copy accounting: the delta of this thread's
        // copy counters since build is this ensemble's own traffic
        // (scenarios never migrate threads mid-run). Saturating guards
        // the degenerate build-on-one-thread, collect-on-another case.
        let (s0, d0, b0) = self.payload_base;
        let (s1, d1, b1) = slice_nfsproto::bytes::local_clone_stats();
        // Shard worker threads keep their own thread-local payload
        // counters; the engine harvests them at the end of each parallel
        // run, so the total is this thread's delta plus the workers'.
        let (ws, wd, wb) = self.engine.worker_payload();
        counters.push((
            "payload.shallow_clones".to_string(),
            s1.saturating_sub(s0) + ws,
        ));
        counters.push((
            "payload.deep_copies".to_string(),
            d1.saturating_sub(d0) + wd,
        ));
        counters.push((
            "payload.deep_copy_bytes".to_string(),
            b1.saturating_sub(b0) + wb,
        ));

        let reg = &mut self.engine.obs_mut().registry;
        for (k, v) in counters {
            reg.set(&k, v);
        }
        for (k, v) in gauges {
            reg.set_gauge(&k, v);
        }
        self.engine.fold_engine_metrics();
    }

    /// Collects all component statistics and exports the observability
    /// snapshot as deterministic JSON, stamped with the current sim time.
    pub fn obs_json(&mut self) -> String {
        self.collect_obs();
        self.engine.export_obs_json()
    }

    /// Reconfigures the directory service onto a new logical-slot map
    /// (paper §3.3.1): every site installs the map, entries whose slots
    /// moved migrate to their new homes, and µproxies discover the change
    /// lazily — their next misdirected request is bounced, triggering a
    /// table refresh and an RPC retransmission through the fresh table.
    ///
    /// # Panics
    ///
    /// Panics if `new_map` does not cover all logical slots or names a
    /// site outside the ensemble.
    pub fn reconfigure_dir_servers(&mut self, new_map: Vec<u32>) {
        assert!(new_map.iter().all(|&s| (s as usize) < self.dirs.len()));
        let now = self.engine.now();
        // Install the map everywhere, bumping each site's generation.
        for &d in &self.dirs {
            let actor = self.engine.actor_mut::<crate::actors::DirActor>(d);
            actor.server.set_slot_map(new_map.clone());
            actor.table_generation += 1;
        }
        // Migrate entries: export from every site, import at the owner.
        let mut moving: Vec<(usize, Vec<(u64, slice_dirsvc::NameCell)>)> = Vec::new();
        for &d in &self.dirs {
            let actor = self.engine.actor_mut::<crate::actors::DirActor>(d);
            let cells = actor.server.export_entries(now);
            moving.push((0, cells));
        }
        let mut per_site: Vec<Vec<(u64, slice_dirsvc::NameCell)>> =
            vec![Vec::new(); self.dirs.len()];
        for (_, cells) in moving {
            for (key, cell) in cells {
                let site = new_map[slice_hashes::bucket_of(key, slice_hashes::LOGICAL_SLOTS)];
                per_site[site as usize].push((key, cell));
            }
        }
        for (site, cells) in per_site.into_iter().enumerate() {
            if cells.is_empty() {
                continue;
            }
            let actor = self
                .engine
                .actor_mut::<crate::actors::DirActor>(self.dirs[site]);
            actor.server.import_entries(now, cells);
        }
    }
}

/// A baseline (single-server) deployment.
pub struct BaselineEnsemble {
    /// The simulation engine.
    pub engine: Engine<Wire>,
    /// Client node ids.
    pub clients: Vec<NodeId>,
    /// The server node.
    pub server: NodeId,
}

impl BaselineEnsemble {
    /// Builds a baseline deployment of `kind` with one server of `disks`
    /// arms and one client per workload.
    pub fn build(
        kind: BaselineKind,
        disks: usize,
        retain_data: bool,
        charge_cpu: bool,
        seed: u64,
        workloads: Vec<Box<dyn Workload>>,
    ) -> Self {
        let n = workloads.len();
        let plan = AddrPlan::new(n, 1, 0, 0);
        let server_addr = plan.dirs[0];
        let mut engine: Engine<Wire> = Engine::new(NetConfig::gigabit(), seed);
        let client_ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let server_id = NodeId(n as u32);
        let mut router = Router::new();
        for (i, &id) in client_ids.iter().enumerate() {
            router.register(plan.clients[i], id);
        }
        router.register(server_addr, server_id);
        for (i, workload) in workloads.into_iter().enumerate() {
            let cfg = ClientConfig {
                addr: plan.clients[i],
                server_addr,
                cred: AuthUnix {
                    machine: format!("client{i}"),
                    ..Default::default()
                },
                charge_cpu,
                record_history: false,
            };
            let actor = ClientActor::new(cfg, None, router.clone(), vec![], workload);
            let id = engine.add_node(&format!("client{i}"), Box::new(actor));
            assert_eq!(id, client_ids[i]);
        }
        let fs = MonoFs::new(kind, disks, retain_data);
        let actor = BaselineActor::new(fs, server_addr, router, charge_cpu);
        let id = engine.add_node("baseline", Box::new(actor));
        assert_eq!(id, server_id);
        BaselineEnsemble {
            engine,
            clients: client_ids,
            server: server_id,
        }
    }

    /// Partitions the deployment across `shards` engine shards: the
    /// server stays on shard 0 and clients round-robin across all shards.
    /// Must be called before [`BaselineEnsemble::start`]. A no-op at 1.
    pub fn set_shards(&mut self, shards: usize) {
        let total = self.clients.len() + 1;
        let shards = shards.max(1).min(total);
        if shards <= 1 {
            return;
        }
        let mut assignment = round_robin_assignment(&[&self.clients], shards);
        assignment.push(0); // server
        self.engine.set_shards(shards, &assignment);
    }

    /// Starts every client's workload.
    pub fn start(&mut self) {
        for &c in &self.clients.clone() {
            self.engine.kick(c);
        }
    }

    /// Runs until every workload finishes (plus a time-capped drain of
    /// trailing background work) or `deadline` passes. Same stepping
    /// scheme as [`SliceEnsemble::run_to_completion`].
    pub fn run_to_completion(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let step = (self.engine.now() + SimDuration::from_secs(1)).min(deadline);
            self.engine.run_until(step);
            let done = self
                .clients
                .iter()
                .all(|&c| self.engine.actor::<ClientActor>(c).finished());
            if done {
                let drain_cap = self.engine.now() + DRAIN_HORIZON;
                while self.engine.live_events() > 0 && self.engine.now() < drain_cap {
                    let step = (self.engine.now() + SimDuration::from_secs(1)).min(drain_cap);
                    self.engine.run_until(step);
                }
                return self.engine.now();
            }
            if self.engine.now() >= deadline || self.engine.live_events() == 0 {
                return self.engine.now();
            }
        }
    }

    /// Client actor access.
    pub fn client(&self, i: usize) -> &ClientActor {
        self.engine.actor::<ClientActor>(self.clients[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_excess_parity() {
        // n-k > k: parity shard offsets would spill past the stripe.
        let cfg = SliceConfig {
            storage_nodes: 8,
            coded: Some((6, 2)),
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("n-k=4"), "spell out the geometry: {err}");
        assert!(err.contains("n <= 2k"), "state the constraint: {err}");
    }

    #[test]
    fn validate_rejects_more_shards_than_sites() {
        // n > available sites: nowhere to place disjoint shards.
        let cfg = SliceConfig {
            storage_nodes: 4,
            coded: Some((6, 4)),
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("at least n=6"), "name the shortfall: {err}");

        // Enough physical sites but too few *active* ones fails the same
        // way: standby spares don't hold shards until they join.
        let cfg = SliceConfig {
            storage_nodes: 8,
            active_storage: Some(4),
            coded: Some((6, 4)),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        for coded in [Some((4, 0)), Some((4, 4)), Some((200, 100))] {
            let cfg = SliceConfig {
                storage_nodes: 250,
                coded,
                ..Default::default()
            };
            assert!(cfg.validate().is_err(), "{coded:?} must be rejected");
        }
        let cfg = SliceConfig {
            active_storage: Some(0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SliceConfig {
            active_storage: Some(5),
            storage_nodes: 4,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        assert!(SliceConfig::default().validate().is_ok());
    }
}
