//! The unified message envelope carried by the simulated network, and the
//! address plan for an ensemble.
//!
//! Client-visible NFS traffic travels as real encoded UDP [`Packet`]s —
//! those are what the µproxy intercepts and rewrites. Internal server
//! protocols (coordinator, storage control, directory peer protocol,
//! small-file control) are typed messages; they still pay network time via
//! their estimated wire sizes.

use slice_dirsvc::PeerMsg;
use slice_nfsproto::{Packet, SockAddr};
use slice_sim::{MessageSize, NodeId};
use slice_smallfile::SfCtl;
use slice_storage::{CoordMsg, CoordReply, StorageCtl, StorageCtlReply};

/// Every message exchanged between ensemble nodes.
#[derive(Debug, Clone)]
pub enum Wire {
    /// An NFS RPC datagram (the client-visible protocol).
    Udp(Packet),
    /// A message to a block-service coordinator.
    Coord(CoordMsg),
    /// A coordinator's reply.
    CoordReply(CoordReply),
    /// A coordinator-to-storage control operation.
    Ctl(StorageCtl),
    /// A storage node's control reply.
    CtlReply(StorageCtlReply),
    /// Directory-server peer protocol.
    Peer {
        /// Originating directory site.
        from_site: u32,
        /// The message.
        msg: PeerMsg,
    },
    /// Directory-service to small-file-server control.
    SfCtl(SfCtl),
    /// A µproxy asking a directory server for the current routing table.
    TableFetch,
    /// The table contents (logical-slot to physical-site map, generation).
    TableData {
        /// The slot map.
        slots: Vec<u32>,
        /// Table generation.
        generation: u64,
    },
}

impl MessageSize for Wire {
    fn wire_size(&self) -> usize {
        match self {
            Wire::Udp(p) => MessageSize::wire_size(p),
            Wire::Coord(_) | Wire::CoordReply(_) => 96,
            // Resync bulk transfers carry real payloads; other control
            // messages are small fixed-size frames.
            Wire::Ctl(StorageCtl::ResyncWrite { data, .. }) => 64 + data.len(),
            Wire::CtlReply(StorageCtlReply::ResyncData { data, .. }) => 64 + data.len(),
            Wire::Ctl(_) | Wire::CtlReply(_) => 64,
            Wire::Peer { msg, .. } => match msg {
                PeerMsg::InsertEntry { name, .. } => 128 + name.len(),
                _ => 96,
            },
            Wire::SfCtl(_) => 64,
            Wire::TableFetch => 32,
            Wire::TableData { slots, .. } => 16 + slots.len() * 4,
        }
    }

    /// Only client/server NFS traffic rides UDP datagrams; typed control
    /// channels model reliable transports and are exempt from datagram
    /// fault injection (duplication, reordering).
    fn datagram(&self) -> bool {
        matches!(self, Wire::Udp(_))
    }
}

/// The ensemble address plan: deterministic IPs per server class.
#[derive(Debug, Clone)]
pub struct AddrPlan {
    /// Client addresses by index.
    pub clients: Vec<SockAddr>,
    /// Directory server addresses by site.
    pub dirs: Vec<SockAddr>,
    /// Small-file server addresses by index.
    pub sfs: Vec<SockAddr>,
    /// Storage node addresses by site.
    pub storage: Vec<SockAddr>,
    /// The virtual NFS server address clients mount.
    pub virtual_addr: SockAddr,
}

impl AddrPlan {
    /// Builds the plan for an ensemble of the given sizes.
    pub fn new(clients: usize, dirs: usize, sfs: usize, storage: usize) -> Self {
        let mk = |base: u32, i: usize| SockAddr::new(base + i as u32, 2049);
        AddrPlan {
            clients: (0..clients)
                .map(|i| SockAddr::new(0x0a00_0100 + i as u32, 700))
                .collect(),
            dirs: (0..dirs).map(|i| mk(0x0a00_1000, i)).collect(),
            sfs: (0..sfs).map(|i| mk(0x0a00_2000, i)).collect(),
            storage: (0..storage).map(|i| mk(0x0a00_3000, i)).collect(),
            virtual_addr: SockAddr::new(0x0a00_ffff, 2049),
        }
    }
}

/// Maps wire addresses to engine nodes (each actor holds a copy).
#[derive(Debug, Clone, Default)]
pub struct Router {
    entries: Vec<(u32, NodeId)>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `addr` as belonging to `node`.
    pub fn register(&mut self, addr: SockAddr, node: NodeId) {
        self.entries.push((addr.ip, node));
    }

    /// Resolves the node owning `addr`'s IP.
    ///
    /// # Panics
    ///
    /// Panics on an unregistered address — that is a harness bug, not a
    /// runtime condition.
    pub fn node_of(&self, addr: SockAddr) -> NodeId {
        self.entries
            .iter()
            .find(|(ip, _)| *ip == addr.ip)
            .map(|(_, n)| *n)
            .unwrap_or_else(|| panic!("no node registered for {addr}"))
    }

    /// Resolves if registered.
    pub fn try_node_of(&self, addr: SockAddr) -> Option<NodeId> {
        self.entries
            .iter()
            .find(|(ip, _)| *ip == addr.ip)
            .map(|(_, n)| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_plan_is_disjoint() {
        let p = AddrPlan::new(4, 3, 2, 8);
        let mut all: Vec<u32> = p
            .clients
            .iter()
            .chain(&p.dirs)
            .chain(&p.sfs)
            .chain(&p.storage)
            .map(|a| a.ip)
            .collect();
        all.push(p.virtual_addr.ip);
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "addresses must not collide");
    }

    #[test]
    fn router_resolves() {
        let mut r = Router::new();
        let a = SockAddr::new(7, 2049);
        r.register(a, NodeId(3));
        assert_eq!(r.node_of(a), NodeId(3));
        assert_eq!(r.try_node_of(SockAddr::new(8, 1)), None);
    }

    #[test]
    fn wire_sizes_are_sane() {
        let plan = AddrPlan::new(1, 1, 1, 1);
        let pkt = Packet::new(plan.clients[0], plan.virtual_addr, vec![0u8; 100]);
        assert_eq!(Wire::Udp(pkt).wire_size(), 128);
        assert!(Wire::Ctl(StorageCtl::Remove { obj: 1 }).wire_size() > 0);
    }
}
