//! Slice core: ensemble assembly, the client/µproxy actor, server actors,
//! baselines, and calibration.
//!
//! This crate glues the subsystem crates into runnable deployments inside
//! the deterministic simulator:
//!
//! * [`calib`] — one shared set of testbed-derived model parameters;
//! * [`wire`] — the unified message envelope and address plan;
//! * [`client`] — the NFS client actor with embedded µproxy and the
//!   [`client::Workload`] trait that drives it;
//! * [`actors`] — storage, directory, small-file, and coordinator actors;
//! * [`baseline`] — the monolithic NFS and MFS comparison servers;
//! * [`ensemble`] — builders for Slice and baseline deployments.

pub mod actors;
pub mod baseline;
pub mod calib;
pub mod client;
pub mod ensemble;
pub mod history;
pub mod wire;

pub use baseline::{BaselineActor, BaselineKind, MonoFs};
pub use client::{ClientActor, ClientConfig, ClientIo, ClientStats, Workload};
pub use ensemble::{BaselineEnsemble, EnsemblePolicy, SliceConfig, SliceEnsemble};
pub use history::{OpHistory, OpRecord, CHUNK_BYTES};
pub use wire::{AddrPlan, Router, Wire};
