//! Property tests: XDR roundtrips and decoder robustness.

use proptest::prelude::*;
use slice_xdr::{XdrDecoder, XdrEncoder};

/// One encodable item for roundtrip scripts.
#[derive(Debug, Clone)]
enum Item {
    U32(u32),
    I32(i32),
    U64(u64),
    Bool(bool),
    Opaque(Vec<u8>),
    Str(String),
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        any::<u32>().prop_map(Item::U32),
        any::<i32>().prop_map(Item::I32),
        any::<u64>().prop_map(Item::U64),
        any::<bool>().prop_map(Item::Bool),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(Item::Opaque),
        "[a-zA-Z0-9/._-]{0,64}".prop_map(Item::Str),
    ]
}

proptest! {
    /// Any sequence of items encodes and decodes back identically.
    #[test]
    fn roundtrip_sequences(items in proptest::collection::vec(item_strategy(), 0..32)) {
        let mut enc = XdrEncoder::new();
        for item in &items {
            match item {
                Item::U32(v) => enc.put_u32(*v),
                Item::I32(v) => enc.put_i32(*v),
                Item::U64(v) => enc.put_u64(*v),
                Item::Bool(v) => enc.put_bool(*v),
                Item::Opaque(v) => enc.put_opaque(v),
                Item::Str(s) => enc.put_string(s),
            }
        }
        let bytes = enc.into_bytes();
        prop_assert_eq!(bytes.len() % 4, 0, "xdr output is 4-byte aligned");
        let mut dec = XdrDecoder::new(&bytes);
        for item in &items {
            match item {
                Item::U32(v) => prop_assert_eq!(dec.get_u32().unwrap(), *v),
                Item::I32(v) => prop_assert_eq!(dec.get_i32().unwrap(), *v),
                Item::U64(v) => prop_assert_eq!(dec.get_u64().unwrap(), *v),
                Item::Bool(v) => prop_assert_eq!(dec.get_bool().unwrap(), *v),
                Item::Opaque(v) => prop_assert_eq!(dec.get_opaque().unwrap(), &v[..]),
                Item::Str(s) => prop_assert_eq!(dec.get_string().unwrap(), s.as_str()),
            }
        }
        prop_assert!(dec.is_empty());
    }

    /// The decoder never panics or over-reads on arbitrary input.
    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = XdrDecoder::new(&bytes);
        // Exercise every accessor; all must return Ok or Err, never panic.
        let _ = dec.get_u32();
        let _ = dec.get_bool();
        let _ = dec.get_opaque();
        let _ = dec.get_string();
        let _ = dec.skip_opaque();
        let _ = dec.get_u64();
        prop_assert!(dec.position() <= bytes.len());
    }

    /// Truncating an encoding at any point yields an error, not a panic.
    #[test]
    fn truncation_always_errors_cleanly(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        cut_frac in 0.0f64..1.0
    ) {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        enc.put_u64(0xdead_beef_0000_0001);
        let bytes = enc.into_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let mut dec = XdrDecoder::new(&bytes[..cut]);
        let a = dec.get_opaque().map(|s| s.to_vec());
        let b = dec.get_u64();
        prop_assert!(a.is_err() || b.is_err());
    }
}
