//! Randomized property tests: XDR roundtrips and decoder robustness.
//!
//! Driven by the in-tree seeded PRNG (`slice_sim::Rng`) instead of
//! proptest so the workspace tests offline; each property runs a fixed
//! number of cases from a pinned seed, so failures replay exactly.

use slice_sim::Rng;
use slice_xdr::{XdrDecoder, XdrEncoder};

const CASES: usize = 256;

/// One encodable item for roundtrip scripts.
#[derive(Debug, Clone)]
enum Item {
    U32(u32),
    I32(i32),
    U64(u64),
    Bool(bool),
    Opaque(Vec<u8>),
    Str(String),
}

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/._-";

fn random_item(rng: &mut Rng) -> Item {
    match rng.gen_range(0u32..6) {
        0 => Item::U32(rng.gen()),
        1 => Item::I32(rng.gen::<u32>() as i32),
        2 => Item::U64(rng.gen()),
        3 => Item::Bool(rng.gen()),
        4 => {
            let len = rng.gen_range(0usize..200);
            Item::Opaque((0..len).map(|_| rng.gen::<u8>()).collect())
        }
        _ => {
            let len = rng.gen_range(0usize..64);
            Item::Str(
                (0..len)
                    .map(|_| NAME_CHARS[rng.gen_range(0..NAME_CHARS.len())] as char)
                    .collect(),
            )
        }
    }
}

/// Any sequence of items encodes and decodes back identically.
#[test]
fn roundtrip_sequences() {
    let mut rng = Rng::seed_from_u64(0x7844_5201);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..32);
        let items: Vec<Item> = (0..n).map(|_| random_item(&mut rng)).collect();
        let mut enc = XdrEncoder::new();
        for item in &items {
            match item {
                Item::U32(v) => enc.put_u32(*v),
                Item::I32(v) => enc.put_i32(*v),
                Item::U64(v) => enc.put_u64(*v),
                Item::Bool(v) => enc.put_bool(*v),
                Item::Opaque(v) => enc.put_opaque(v),
                Item::Str(s) => enc.put_string(s),
            }
        }
        let bytes = enc.into_bytes();
        assert_eq!(bytes.len() % 4, 0, "xdr output is 4-byte aligned");
        let mut dec = XdrDecoder::new(&bytes);
        for item in &items {
            match item {
                Item::U32(v) => assert_eq!(dec.get_u32().unwrap(), *v),
                Item::I32(v) => assert_eq!(dec.get_i32().unwrap(), *v),
                Item::U64(v) => assert_eq!(dec.get_u64().unwrap(), *v),
                Item::Bool(v) => assert_eq!(dec.get_bool().unwrap(), *v),
                Item::Opaque(v) => assert_eq!(dec.get_opaque().unwrap(), &v[..]),
                Item::Str(s) => assert_eq!(dec.get_string().unwrap(), s.as_str()),
            }
        }
        assert!(dec.is_empty());
    }
}

/// The decoder never panics or over-reads on arbitrary input.
#[test]
fn decoder_is_total_on_garbage() {
    let mut rng = Rng::seed_from_u64(0x7844_5202);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let mut dec = XdrDecoder::new(&bytes);
        // Exercise every accessor; all must return Ok or Err, never panic.
        let _ = dec.get_u32();
        let _ = dec.get_bool();
        let _ = dec.get_opaque();
        let _ = dec.get_string();
        let _ = dec.skip_opaque();
        let _ = dec.get_u64();
        assert!(dec.position() <= bytes.len());
    }
}

/// Truncating an encoding at any point yields an error, not a panic.
#[test]
fn truncation_always_errors_cleanly() {
    let mut rng = Rng::seed_from_u64(0x7844_5203);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..64);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let cut_frac: f64 = rng.gen();
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        enc.put_u64(0xdead_beef_0000_0001);
        let bytes = enc.into_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let mut dec = XdrDecoder::new(&bytes[..cut]);
        let a = dec.get_opaque().map(|s| s.to_vec());
        let b = dec.get_u64();
        assert!(a.is_err() || b.is_err());
    }
}
