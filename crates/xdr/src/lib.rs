//! XDR (External Data Representation, RFC 4506 subset) encoding.
//!
//! NFS and ONC RPC messages are XDR-encoded on the wire. The µproxy's
//! per-packet cost is dominated by *decoding* these messages — locating the
//! request type and arguments past variable-length fields (paper §5,
//! Table 3) — so this codec is written for the same access pattern the
//! paper's filter uses: forward, bounds-checked cursor reads over a byte
//! slice, no allocation on the decode fast path except where the caller
//! extracts owned data.
//!
//! All quantities are big-endian and padded to 4-byte alignment, per XDR.

use std::fmt;

/// Errors produced while decoding an XDR stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The stream ended before the requested item.
    Truncated {
        /// Decode offset at which the shortfall was detected.
        offset: usize,
        /// Bytes needed beyond the end of the buffer.
        needed: usize,
    },
    /// A length prefix exceeded the decoder's configured bound.
    LengthOverflow {
        /// The length that was declared in the stream.
        declared: usize,
        /// The maximum the decoder allows.
        max: usize,
    },
    /// A discriminant or enum value was out of range.
    InvalidValue {
        /// Human-readable item description.
        what: &'static str,
        /// The offending raw value.
        value: u32,
    },
    /// Non-zero padding bytes, which RFC 4506 forbids.
    BadPadding,
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated { offset, needed } => {
                write!(
                    f,
                    "xdr stream truncated at offset {offset} (needed {needed} more bytes)"
                )
            }
            XdrError::LengthOverflow { declared, max } => {
                write!(f, "xdr length {declared} exceeds bound {max}")
            }
            XdrError::InvalidValue { what, value } => {
                write!(f, "invalid xdr value {value} for {what}")
            }
            XdrError::BadPadding => write!(f, "non-zero xdr padding"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Result alias for XDR operations.
pub type Result<T> = std::result::Result<T, XdrError>;

/// Largest variable-length item the decoder will accept by default (1 MB):
/// far above any NFS message component, far below anything that could be
/// used to make a µproxy allocate unboundedly from a hostile packet.
pub const DEFAULT_MAX_LEN: usize = 1 << 20;

#[inline]
fn pad_len(n: usize) -> usize {
    (4 - (n % 4)) % 4
}

/// Growable XDR output buffer.
///
/// # Examples
///
/// ```
/// use slice_xdr::{XdrEncoder, XdrDecoder};
///
/// let mut enc = XdrEncoder::new();
/// enc.put_u32(3); // NFS_V3
/// enc.put_string("hello");
/// let bytes = enc.into_bytes();
///
/// let mut dec = XdrDecoder::new(&bytes);
/// assert_eq!(dec.get_u32().unwrap(), 3);
/// assert_eq!(dec.get_string().unwrap(), "hello");
/// assert!(dec.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        XdrEncoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Creates an encoder writing into a caller-supplied buffer (cleared
    /// first), so callers with a buffer recycler can avoid a fresh heap
    /// allocation per encode.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        XdrEncoder { buf }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends an unsigned 32-bit integer.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a signed 32-bit integer.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Appends an unsigned 64-bit integer (XDR "unsigned hyper").
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as a 32-bit 0/1.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Appends fixed-length opaque data (padded, no length prefix).
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.buf
            .extend(std::iter::repeat_n(0u8, pad_len(data.len())));
    }

    /// Appends variable-length opaque data (length prefix + padding).
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Appends a string as variable-length opaque UTF-8.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }
}

/// Forward-only bounds-checked XDR reader over a byte slice.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    max_len: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Wraps `data` with the default length bound.
    pub fn new(data: &'a [u8]) -> Self {
        XdrDecoder {
            data,
            pos: 0,
            max_len: DEFAULT_MAX_LEN,
        }
    }

    /// Wraps `data` with a custom bound on variable-length items.
    pub fn with_max_len(data: &'a [u8], max_len: usize) -> Self {
        XdrDecoder {
            data,
            pos: 0,
            max_len,
        }
    }

    /// Current decode offset from the start of the buffer.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining past the cursor.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(XdrError::Truncated {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an unsigned 32-bit integer.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a signed 32-bit integer.
    #[inline]
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads an unsigned 64-bit integer.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a boolean; any value other than 0 or 1 is an error.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidValue {
                what: "bool",
                value: v,
            }),
        }
    }

    /// Reads `n` bytes of fixed-length opaque data (consuming padding).
    pub fn get_opaque_fixed(&mut self, n: usize) -> Result<&'a [u8]> {
        let body = self.take(n)?;
        let pad = self.take(pad_len(n))?;
        if pad.iter().any(|&b| b != 0) {
            return Err(XdrError::BadPadding);
        }
        Ok(body)
    }

    /// Reads variable-length opaque data, borrowing from the buffer.
    pub fn get_opaque(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u32()? as usize;
        if n > self.max_len {
            return Err(XdrError::LengthOverflow {
                declared: n,
                max: self.max_len,
            });
        }
        self.get_opaque_fixed(n)
    }

    /// Reads a string, validating UTF-8.
    pub fn get_string(&mut self) -> Result<&'a str> {
        let raw = self.get_opaque()?;
        std::str::from_utf8(raw).map_err(|_| XdrError::InvalidValue {
            what: "utf-8 string",
            value: 0,
        })
    }

    /// Skips `n` raw bytes plus padding, as the µproxy does for fields it
    /// does not need to inspect.
    pub fn skip_opaque_fixed(&mut self, n: usize) -> Result<()> {
        self.take(n + pad_len(n))?;
        Ok(())
    }

    /// Skips a variable-length opaque item without touching its contents.
    pub fn skip_opaque(&mut self) -> Result<()> {
        let n = self.get_u32()? as usize;
        if n > self.max_len {
            return Err(XdrError::LengthOverflow {
                declared: n,
                max: self.max_len,
            });
        }
        self.skip_opaque_fixed(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = XdrEncoder::new();
        e.put_u32(0xdead_beef);
        e.put_i32(-17);
        e.put_u64(0x0123_4567_89ab_cdef);
        e.put_bool(true);
        e.put_bool(false);
        let b = e.into_bytes();
        assert_eq!(b.len(), 4 + 4 + 8 + 4 + 4);
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_i32().unwrap(), -17);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert!(d.is_empty());
    }

    #[test]
    fn opaque_padding() {
        for len in 0..9 {
            let data: Vec<u8> = (0..len as u8).collect();
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            let b = e.into_bytes();
            assert_eq!(b.len() % 4, 0, "len {len} not padded");
            let mut d = XdrDecoder::new(&b);
            assert_eq!(d.get_opaque().unwrap(), &data[..]);
            assert!(d.is_empty());
        }
    }

    #[test]
    fn string_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_string("µproxy");
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.get_string().unwrap(), "µproxy");
    }

    #[test]
    fn truncated_reads_fail() {
        let mut e = XdrEncoder::new();
        e.put_u32(5);
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b[..3]);
        assert!(matches!(d.get_u32(), Err(XdrError::Truncated { .. })));
        // A declared length that runs past the buffer must also fail.
        let mut d = XdrDecoder::new(&b);
        assert!(matches!(d.get_opaque(), Err(XdrError::Truncated { .. })));
    }

    #[test]
    fn hostile_length_bounded() {
        let mut e = XdrEncoder::new();
        e.put_u32(u32::MAX);
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        assert!(matches!(
            d.get_opaque(),
            Err(XdrError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn nonzero_padding_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abc");
        let mut b = e.into_bytes();
        *b.last_mut().unwrap() = 1;
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.get_opaque(), Err(XdrError::BadPadding));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(2);
        let b = e.into_bytes();
        assert!(matches!(
            XdrDecoder::new(&b).get_bool(),
            Err(XdrError::InvalidValue {
                what: "bool",
                value: 2
            })
        ));
    }

    #[test]
    fn skip_matches_get() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"skip me");
        e.put_u32(42);
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        d.skip_opaque().unwrap();
        assert_eq!(d.get_u32().unwrap(), 42);
    }
}
