//! # Slice: Interposed Request Routing for Scalable Network Storage
//!
//! A comprehensive Rust reproduction of Anderson, Chase & Vahdat,
//! *"Interposed Request Routing for Scalable Network Storage"*
//! (OSDI 2000). Slice virtualizes the NFS V3 protocol by interposing a
//! request-switching packet filter — the **µproxy** — on each client's
//! network path, distributing requests across an ensemble of network
//! storage nodes, small-file servers, and directory servers that together
//! present one unified file volume.
//!
//! The crates re-exported here are documented individually; start with
//! [`core`] (ensembles) and [`uproxy`] (the routing filter). See DESIGN.md
//! for the system inventory and EXPERIMENTS.md for paper-vs-measured
//! results.
//!
//! ## Quickstart
//!
//! ```
//! use slice::core::{SliceConfig, SliceEnsemble};
//! use slice::workloads::{ScriptWorkload, Step};
//! use slice::sim::{SimDuration, SimTime};
//! use slice::nfsproto::StableHow;
//!
//! let script = ScriptWorkload::new(
//!     vec![
//!         Step::Mkdir { parent: 0, name: "home".into(), save: 1 },
//!         Step::Create { parent: 1, name: "hello".into(), save: 2, mode_extra: 0 },
//!         Step::Write { fh: 2, offset: 0, len: 1024, pattern: 7, stable: StableHow::FileSync },
//!         Step::Read { fh: 2, offset: 0, len: 1024, verify: Some(7) },
//!     ],
//!     3,
//! );
//! let mut ens = SliceEnsemble::build(&SliceConfig::default(), vec![Box::new(script)]);
//! ens.start();
//! ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(60));
//! let wl = ens.client(0).workload().unwrap();
//! # let _ = wl;
//! ```

pub use slice_check as check;
pub use slice_core as core;
pub use slice_dirsvc as dirsvc;
pub use slice_hashes as hashes;
pub use slice_nfsproto as nfsproto;
pub use slice_obs as obs;
pub use slice_sim as sim;
pub use slice_smallfile as smallfile;
pub use slice_storage as storage;
pub use slice_uproxy as uproxy;
pub use slice_workloads as workloads;
pub use slice_xdr as xdr;
