//! The slice-obs observability layer, end to end: a full ensemble run
//! must populate the registry and trace, and two runs with the same seed
//! must export byte-identical JSON — the determinism contract the whole
//! simulator rests on.

mod common;

use common::{assert_errors, deadline};
use slice::core::{SliceConfig, SliceEnsemble};
use slice::nfsproto::StableHow;
use slice::obs::{EventKind, Subsystem};
use slice::workloads::{ScriptWorkload, Step};

/// The quickstart workload: mkdir, create, threshold-straddling writes,
/// commit, verified reads, getattr.
fn quickstart_steps() -> Vec<Step> {
    vec![
        Step::Mkdir {
            parent: 0,
            name: "home".into(),
            save: 1,
        },
        Step::Mkdir {
            parent: 1,
            name: "user".into(),
            save: 2,
        },
        Step::Create {
            parent: 2,
            name: "notes.txt".into(),
            save: 3,
            mode_extra: 0,
        },
        Step::Write {
            fh: 3,
            offset: 0,
            len: 4000,
            pattern: 0x5A,
            stable: StableHow::FileSync,
        },
        Step::Write {
            fh: 3,
            offset: 128 * 1024,
            len: 32768,
            pattern: 0x77,
            stable: StableHow::Unstable,
        },
        Step::Commit { fh: 3 },
        Step::Read {
            fh: 3,
            offset: 0,
            len: 4000,
            verify: Some(0x5A),
        },
        Step::Read {
            fh: 3,
            offset: 128 * 1024,
            len: 32768,
            verify: Some(0x77),
        },
        Step::Getattr {
            fh: 3,
            expect_size: Some(128 * 1024 + 32768),
        },
    ]
}

fn run_quickstart(seed: u64) -> SliceEnsemble {
    let cfg = SliceConfig {
        seed,
        ..SliceConfig::default()
    };
    let script = ScriptWorkload::new(quickstart_steps(), 4);
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(script)]);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    ens
}

#[test]
fn same_seed_runs_export_byte_identical_json() {
    let a = run_quickstart(42).obs_json();
    let b = run_quickstart(42).obs_json();
    assert_eq!(a, b, "same-seed runs must export identical snapshots");
    // And the snapshot must be substantive, not an empty shell.
    assert!(a.contains("\"client.0.ops\":9"), "ops counter missing: {a}");
}

#[test]
fn different_seeds_still_complete_and_export() {
    // Different seeds shuffle event interleavings; the snapshot shape
    // (keys present) survives even when values differ.
    let a = run_quickstart(1).obs_json();
    for key in [
        "\"net.packets_sent\":",
        "\"engine.events_executed\":",
        "\"client.0.ops\":",
        "\"client.0.uproxy.requests_routed\":",
        "\"dirsvc.0.ops_served\":",
        "\"client.op_latency_ns\"",
    ] {
        assert!(a.contains(key), "missing {key} in {a}");
    }
}

#[test]
fn collect_obs_is_idempotent() {
    let mut ens = run_quickstart(7);
    let first = ens.obs_json();
    let second = ens.obs_json();
    assert_eq!(
        first, second,
        "absolute-set folding must not double-count on repeated collection"
    );
}

#[test]
fn registry_folds_component_stats() {
    let mut ens = run_quickstart(11);
    ens.collect_obs();
    let reg = &ens.engine.obs().registry;
    let ops = reg.counter("client.0.ops");
    assert_eq!(ops, 9, "nine script steps complete");
    assert!(reg.counter("net.packets_sent") > 0);
    assert!(reg.counter("client.0.uproxy.requests_routed") > 0);
    // The µproxy absorbed at least the commit's attribute push-back.
    assert!(reg.counter("client.0.uproxy.initiated") > 0);
    // Phase timing is off in simulation: zeros, deterministically.
    assert_eq!(reg.counter("client.0.uproxy.phase.intercept_ns"), 0);
    assert!(reg.counter("client.0.uproxy.phase.packets") > 0);
    // Completed-op latencies landed in the histogram.
    let h = reg
        .histogram("client.op_latency_ns")
        .expect("latency histogram");
    assert_eq!(h.count(), ops);
    assert!(h.max() > 0);
}

#[test]
fn trace_records_packets_and_ops() {
    let ens = run_quickstart(5);
    let trace = &ens.engine.obs().trace;
    assert!(trace.recorded() > 0, "trace must capture events");
    let mut routed = 0u64;
    let mut starts = 0u64;
    let mut completes = 0u64;
    for e in trace.events() {
        match &e.kind {
            EventKind::PacketRouted { .. } => routed += 1,
            EventKind::OpStart { .. } => starts += 1,
            EventKind::OpComplete { latency_ns, .. } => {
                completes += 1;
                assert!(*latency_ns > 0, "completion must carry a latency");
            }
            _ => {}
        }
    }
    assert!(routed > 0, "network packets must be traced");
    assert!(starts > 0 && completes > 0, "client ops must be traced");
}

#[test]
fn disabled_subsystems_are_silent() {
    let cfg = SliceConfig::default();
    let script = ScriptWorkload::new(quickstart_steps(), 4);
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(script)]);
    ens.engine.obs_mut().trace.disable(Subsystem::Net);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    let net_events = ens
        .engine
        .obs()
        .trace
        .events()
        .filter(|e| e.subsystem == Subsystem::Net)
        .count();
    assert_eq!(net_events, 0, "disabled subsystem must record nothing");
    // Other subsystems still record.
    assert!(ens.engine.obs().trace.recorded() > 0);
}
