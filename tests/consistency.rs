//! End-to-end tests of the `slice-check` verification subsystem itself:
//! clean runs pass every oracle deterministically, crashed runs converge
//! to the crash-free reference, and deliberately injected corruption —
//! mutations of server state or of the recorded history — is caught.

mod common;

use common::deadline;
use slice::check::{
    check_histories, check_structural, check_structural_strict, generate_scenario, run_schedule,
    standard_schedules, sweep, DriverWorkload, Injection, Schedule, ScheduleEvent,
};
use slice::core::actors::{DirActor, StorageActor};
use slice::core::{OpHistory, SliceConfig, SliceEnsemble};
use slice::nfsproto::{
    Fhandle, NfsProc, NfsReply, NfsRequest, NfsStatus, ReplyBody, Sattr3, StableHow,
};
use slice::sim::SimTime;
use slice::workloads::{ScriptWorkload, Step};

#[test]
fn clean_sweep_passes_and_is_deterministic() {
    let a = sweep(&[5], 1);
    assert!(a.passed(), "clean sweep failed: {:?}", a.failures);
    assert!(a.ops_checked > 0, "sweep checked nothing");
    let b = sweep(&[5], 1);
    assert_eq!(a.json, b.json, "identical sweeps must be byte-identical");
}

#[test]
fn crash_schedule_converges_to_crash_free_reference() {
    let seed = 12;
    let scenario = generate_scenario(seed, 64);
    let reference = run_schedule(seed, &scenario, &Schedule::default(), None);
    assert!(
        reference.violations.is_empty(),
        "reference run: {:?}",
        reference.violations
    );
    let horizon = reference.finish.as_nanos() / 1_000_000;
    for (i, schedule) in standard_schedules(seed, 2, horizon).iter().enumerate() {
        let out = run_schedule(seed, &scenario, schedule, Some(&reference.snapshot));
        assert!(
            out.violations.is_empty(),
            "schedule {i} ({}): {:?}",
            schedule.describe(),
            out.violations
        );
    }
}

#[test]
fn explorer_exercises_crash_machinery() {
    // A schedule whose crash window certainly overlaps the workload: the
    // run must still finish and pass (this guards against the explorer
    // silently injecting nothing).
    let seed = 3;
    let scenario = generate_scenario(seed, 48);
    let schedule = Schedule {
        events: vec![
            ScheduleEvent {
                at_ms: 40,
                inject: Injection::CrashDir {
                    site: 0,
                    down_ms: 1500,
                },
            },
            ScheduleEvent {
                at_ms: 60,
                inject: Injection::LossWindow {
                    permille: 20,
                    dur_ms: 1000,
                },
            },
        ],
    };
    let out = run_schedule(seed, &scenario, &schedule, None);
    assert!(!out.stalled, "run stalled under injected faults");
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(out.completed_ops > 0);
}

/// Runs a tiny scripted workload with history recording on, returning the
/// quiesced ensemble for mutation.
fn small_run(cfg: SliceConfig, steps: Vec<Step>, slots: usize) -> SliceEnsemble {
    let cfg = SliceConfig {
        record_history: true,
        retain_data: true,
        ..cfg
    };
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(steps, slots))]);
    ens.start();
    ens.run_to_completion(deadline());
    assert!(ens.client(0).finished(), "script did not finish");
    ens
}

#[test]
fn mutation_forgotten_name_cell_is_caught() {
    let steps = vec![
        Step::Create {
            parent: 0,
            name: "victim".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 1024,
            pattern: 0x5a,
            stable: StableHow::FileSync,
        },
    ];
    let mut ens = small_run(SliceConfig::default(), steps, 2);
    assert!(
        check_structural(&ens).is_empty(),
        "clean run must pass before mutation"
    );
    // Mutation: drop the name cell for "victim" behind the server's back,
    // leaving its attribute cell and the parent's entry count behind.
    let dir = ens.dirs[0];
    let key = {
        let srv = &ens.engine.actor::<DirActor>(dir).server;
        srv.dump_name_cells()
            .into_iter()
            .find(|(_, c)| c.name == "victim")
            .expect("victim cell")
            .0
    };
    assert!(ens
        .engine
        .actor_mut::<DirActor>(dir)
        .server
        .forget_name(key));
    let violations = check_structural(&ens);
    assert!(
        !violations.is_empty(),
        "structural oracle missed the forgotten name cell"
    );
    let oracles: Vec<&str> = violations.iter().map(|v| v.oracle).collect();
    assert!(
        oracles
            .iter()
            .any(|o| *o == "dirsvc_entry_count" || *o == "dirsvc_orphan" || *o == "dirsvc_nlink"),
        "unexpected oracle set: {oracles:?}"
    );
}

#[test]
fn mutation_dropped_storage_object_is_caught() {
    let steps = vec![
        Step::Create {
            parent: 0,
            name: "bulk".into(),
            save: 1,
            mode_extra: 0,
        },
        // A large write routed through the coordinator so the block map
        // records object placements.
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 64 * 1024,
            pattern: 0x33,
            stable: StableHow::FileSync,
        },
    ];
    let cfg = SliceConfig {
        use_block_maps: true,
        ..SliceConfig::default()
    };
    let mut ens = small_run(cfg, steps, 2);
    assert!(
        check_structural_strict(&ens).is_empty(),
        "clean run must pass before mutation"
    );
    // Mutation: delete every storage node's backing object for the file
    // while the coordinator's block map still claims placements.
    let mut dropped = false;
    for &s in &ens.storage.clone() {
        let store = ens.engine.actor_mut::<StorageActor>(s).node.store_mut();
        let files: Vec<u64> = (2..32).filter(|&id| store.get(id).is_some()).collect();
        for id in files {
            dropped |= store.remove(id);
        }
    }
    assert!(dropped, "no storage object found to drop");
    let violations = check_structural_strict(&ens);
    assert!(
        violations.iter().any(|v| v.oracle.starts_with("block_map")),
        "block-map oracle missed the dropped object: {violations:?}"
    );
}

#[test]
fn mutation_corrupted_history_is_caught() {
    // A synthetic recorded history in which a stable write of 0x55 is
    // followed by a read observing 0x66: no register assignment explains
    // it, so the data oracle must flag the file.
    let fh = Fhandle::new(7, 0, 0, 0, 1);
    let t = SimTime::from_nanos;
    let mut h = OpHistory::new();
    h.begin(
        t(10),
        1,
        &NfsRequest::Write {
            fh,
            offset: 0,
            stable: StableHow::FileSync,
            data: vec![0x55; 1024],
        },
    );
    h.complete(
        t(20),
        1,
        0,
        &NfsReply {
            proc: NfsProc::Write,
            status: NfsStatus::Ok,
            attr: None,
            body: ReplyBody::Write {
                count: 1024,
                committed: StableHow::FileSync,
                verf: 1,
            },
        },
    );
    h.begin(
        t(30),
        2,
        &NfsRequest::Read {
            fh,
            offset: 0,
            count: 1024,
        },
    );
    h.complete(
        t(40),
        2,
        0,
        &NfsReply {
            proc: NfsProc::Read,
            status: NfsStatus::Ok,
            attr: None,
            body: ReplyBody::Read {
                data: vec![0x66; 1024],
                eof: true,
            },
        },
    );
    let (violations, stats) = check_histories(&[&h]);
    assert!(stats.registers_checked >= 1);
    assert!(
        violations
            .iter()
            .any(|v| v.oracle == "close_to_open" || v.oracle == "linearizability"),
        "data oracle missed the corrupted history: {violations:?}"
    );
}

#[test]
fn mutation_lost_truncate_is_caught() {
    // Regression shape for a real bug the explorer found: a truncate whose
    // data-plane clamp is lost resurrects old bytes on the next read. Here
    // the full stack executes correctly, so the oracle must stay quiet —
    // and the synthetic variant (truncate recorded, old value read back)
    // must fire.
    let steps = vec![
        Step::Create {
            parent: 0,
            name: "t".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 4096,
            pattern: 0x42,
            stable: StableHow::FileSync,
        },
        Step::Setattr {
            fh: 1,
            attr: Sattr3 {
                size: Some(0),
                ..Default::default()
            },
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 1024,
            pattern: 0x43,
            stable: StableHow::FileSync,
        },
        Step::Read {
            fh: 1,
            offset: 0,
            len: 4096,
            verify: None,
        },
    ];
    let ens = small_run(SliceConfig::default(), steps, 2);
    let (violations, _) = check_histories(&ens.histories());
    assert!(violations.is_empty(), "real stack: {violations:?}");

    // Synthetic lost-truncate history: write 0x42, truncate to 0, then a
    // read past the truncation point still sees 0x42 in chunk 1.
    let fh = Fhandle::new(9, 0, 0, 0, 1);
    let t = SimTime::from_nanos;
    let mut h = OpHistory::new();
    h.begin(
        t(10),
        1,
        &NfsRequest::Write {
            fh,
            offset: 0,
            stable: StableHow::FileSync,
            data: vec![0x42; 2048],
        },
    );
    h.complete(
        t(20),
        1,
        0,
        &NfsReply {
            proc: NfsProc::Write,
            status: NfsStatus::Ok,
            attr: None,
            body: ReplyBody::Write {
                count: 2048,
                committed: StableHow::FileSync,
                verf: 1,
            },
        },
    );
    h.begin(
        t(30),
        2,
        &NfsRequest::Setattr {
            fh,
            attr: Sattr3 {
                size: Some(0),
                ..Default::default()
            },
        },
    );
    h.complete(
        t(40),
        2,
        0,
        &NfsReply {
            proc: NfsProc::Setattr,
            status: NfsStatus::Ok,
            attr: None,
            body: ReplyBody::None,
        },
    );
    h.begin(
        t(50),
        3,
        &NfsRequest::Read {
            fh,
            offset: 1024,
            count: 1024,
        },
    );
    h.complete(
        t(60),
        3,
        0,
        &NfsReply {
            proc: NfsProc::Read,
            status: NfsStatus::Ok,
            attr: None,
            body: ReplyBody::Read {
                data: vec![0x42; 1024],
                eof: true,
            },
        },
    );
    let (violations, _) = check_histories(&[&h]);
    assert!(
        !violations.is_empty(),
        "data oracle missed the lost truncate"
    );
}

#[test]
fn driver_workload_scenarios_are_deterministic() {
    let a = generate_scenario(21, 80);
    let b = generate_scenario(21, 80);
    assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
    let w = DriverWorkload::new(a);
    assert_eq!(w.scenario().ops.len(), b.ops.len());
}
