//! Failure injection and recovery: dataless file managers recover from
//! their write-ahead logs in shared network storage (paper §2.3, §3.3.2),
//! and the µproxy may lose its soft state without compromising
//! correctness (§2.1).

mod common;

use common::{assert_errors, deadline};
use slice::core::{SliceConfig, SliceEnsemble};
use slice::nfsproto::StableHow;
use slice::sim::SimDuration;
use slice::workloads::{ScriptWorkload, Step};

/// Builds, runs phase one to completion, applies `fault`, then runs phase
/// two on the same client and asserts it passes. Every run also records
/// the client-visible op history and is vetted by the slice-check
/// consistency oracles after quiescing.
fn two_phase(
    cfg: &SliceConfig,
    phase1: Vec<Step>,
    slots1: usize,
    fault: impl FnOnce(&mut SliceEnsemble),
    phase2: Vec<Step>,
    slots2: usize,
) -> SliceEnsemble {
    let cfg = SliceConfig {
        record_history: true,
        ..cfg.clone()
    };
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(phase1, slots1))]);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    fault(&mut ens);
    ens.client_mut(0)
        .set_workload(Box::new(ScriptWorkload::new(phase2, slots2)));
    let c0 = ens.clients[0];
    ens.engine.kick(c0);
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    ens
}

#[test]
fn directory_server_recovers_from_wal() {
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Mkdir {
            parent: 0,
            name: "stable".into(),
            save: 1,
        },
        Step::Create {
            parent: 1,
            name: "kept".into(),
            save: 2,
            mode_extra: 0,
        },
        Step::Write {
            fh: 2,
            offset: 0,
            len: 3000,
            pattern: 0x42,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "stable".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Lookup {
            parent: 1,
            name: "kept".into(),
            save: 2,
            expect_ok: true,
        },
        Step::Read {
            fh: 2,
            offset: 0,
            len: 3000,
            verify: Some(0x42),
        },
        // The volume is fully writable again after failover.
        Step::Create {
            parent: 1,
            name: "after".into(),
            save: 3,
            mode_extra: 0,
        },
    ];
    two_phase(
        &cfg,
        phase1,
        3,
        |ens| {
            // Crash and restart the (only) directory server: volatile
            // cells are lost, the WAL in shared storage survives.
            let dir = ens.dirs[0];
            ens.engine.fail_node(dir);
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(2));
            ens.engine.recover_node(dir);
        },
        phase2,
        4,
    );
}

#[test]
fn smallfile_server_recovers_from_wal() {
    let cfg = SliceConfig {
        sf_servers: 1,
        ..Default::default()
    };
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "small".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 10_000,
            pattern: 0x66,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "small".into(),
            save: 1,
            expect_ok: true,
        },
        // The data was stable in the backing storage objects before the
        // crash; recovery rebuilds the map records and re-fetches it.
        Step::Read {
            fh: 1,
            offset: 0,
            len: 10_000,
            verify: Some(0x66),
        },
    ];
    two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            let sf = ens.sfs[0];
            ens.engine.fail_node(sf);
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(2));
            ens.engine.recover_node(sf);
        },
        phase2,
        2,
    );
}

#[test]
fn storage_node_restart_changes_verifier_but_keeps_stable_data() {
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "bulk".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            pattern: 0x11,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "bulk".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Read {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            verify: Some(0x11),
        },
    ];
    let ens = two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            for &s in &ens.storage.clone() {
                ens.engine.fail_node(s);
            }
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(1));
            for &s in &ens.storage.clone() {
                ens.engine.recover_node(s);
            }
        },
        phase2,
        2,
    );
    for &s in &ens.storage {
        let actor = ens.engine.actor::<slice::core::actors::StorageActor>(s);
        assert!(
            actor.node.verifier() > 1,
            "restart must change the write verifier"
        );
    }
}

#[test]
fn uproxy_state_loss_is_transparent() {
    // Drop the µproxy's entire soft state between phases: the paper
    // requires this to be safe ("free to discard its state ... without
    // compromising correctness").
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "f".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 5000,
            pattern: 0x33,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "f".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Read {
            fh: 1,
            offset: 0,
            len: 5000,
            verify: Some(0x33),
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 100,
            pattern: 0x44,
            stable: StableHow::FileSync,
        },
        Step::Read {
            fh: 1,
            offset: 0,
            len: 100,
            verify: Some(0x44),
        },
    ];
    two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            ens.client_mut(0)
                .proxy_mut()
                .expect("slice client")
                .lose_state();
        },
        phase2,
        2,
    );
}

#[test]
fn coordinator_recovers_open_intents() {
    // Crash the coordinator right after work that opened intents; its
    // recovery scan must resolve them (probe, then complete or abort) and
    // the service must keep working.
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "c".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            pattern: 0x21,
            stable: StableHow::Unstable,
        },
        Step::Commit { fh: 1 },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "c".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Write {
            fh: 1,
            offset: 192 * 1024,
            len: 32768,
            pattern: 0x22,
            stable: StableHow::Unstable,
        },
        Step::Commit { fh: 1 },
        Step::Read {
            fh: 1,
            offset: 192 * 1024,
            len: 32768,
            verify: Some(0x22),
        },
    ];
    let ens = two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            let coord = ens.coords[0];
            ens.engine.fail_node(coord);
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(1));
            ens.engine.recover_node(coord);
        },
        phase2,
        2,
    );
    let coord = ens
        .engine
        .actor::<slice::core::actors::CoordActor>(ens.coords[0]);
    assert_eq!(
        coord.coord.open_intents(),
        0,
        "no intents may dangle after recovery"
    );
}

#[test]
fn sustained_packet_loss_with_bulk_transfer() {
    // 2% loss under a multi-block transfer: the end-to-end retransmission
    // machinery must deliver a fully intact file.
    let cfg = SliceConfig {
        seed: 99,
        record_history: true,
        ..Default::default()
    };
    let mut steps = vec![Step::Create {
        parent: 0,
        name: "lossy".into(),
        save: 1,
        mode_extra: 0,
    }];
    for i in 0..6u64 {
        steps.push(Step::Write {
            fh: 1,
            offset: i * 32768,
            len: 32768,
            pattern: 0x80 + i as u8,
            stable: StableHow::FileSync,
        });
    }
    for i in 0..6u64 {
        steps.push(Step::Read {
            fh: 1,
            offset: i * 32768,
            len: 32768,
            verify: Some(0x80 + i as u8),
        });
    }
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(steps, 2))]);
    ens.engine.set_loss_prob(0.02);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
}

/// With one storage node crashed and never recovered, a mirrored-read
/// workload completes with zero failed ops: the µproxy's suspicion table
/// steers every read of a victim-mirrored chunk to the surviving replica.
#[test]
fn mirrored_reads_fail_over_while_node_stays_down() {
    use slice::workloads::MODE_MIRRORED;
    let cfg = SliceConfig::default();
    let mut phase1 = vec![Step::Create {
        parent: 0,
        name: "mir".into(),
        save: 1,
        mode_extra: MODE_MIRRORED,
    }];
    for i in 0..8u64 {
        phase1.push(Step::Write {
            fh: 1,
            offset: 128 * 1024 + i * 32768,
            len: 32768,
            pattern: 0x50 + i as u8,
            stable: StableHow::FileSync,
        });
    }
    let mut phase2 = vec![Step::Lookup {
        parent: 0,
        name: "mir".into(),
        save: 1,
        expect_ok: true,
    }];
    for i in 0..8u64 {
        phase2.push(Step::Read {
            fh: 1,
            offset: 128 * 1024 + i * 32768,
            len: 32768,
            verify: Some(0x50 + i as u8),
        });
    }
    let ens = two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            // Crash one replica holder; it never comes back.
            let s = ens.storage[0];
            ens.engine.fail_node(s);
        },
        phase2,
        2,
    );
    assert_eq!(
        ens.client(0).stats().timeouts,
        0,
        "reads must fail over, not time out"
    );
    let proxy = ens.client(0).proxy().expect("slice client");
    assert!(
        proxy.suspected_sites().contains(&0),
        "the dead site must be under suspicion"
    );
    let (failovers, _, _, _) = proxy.ha_stats();
    assert!(
        failovers > 0,
        "reads of victim-mirrored chunks must re-route"
    );
}

/// A mirrored write issued while one replica is down completes at reduced
/// redundancy, lands in the coordinator's dirty-region log, is copied
/// back by the online resync after `recover_storage_node`, and the
/// recovered node then serves reads once a probe clears its suspicion.
#[test]
fn degraded_write_resyncs_and_recovered_mirror_serves_reads() {
    use slice::core::actors::{CoordActor, StorageActor};
    use slice::workloads::BulkIo;

    let cfg = SliceConfig {
        clients: 1,
        record_history: true,
        probe_interval_ms: 300,
        ..Default::default()
    };
    let total = 16 * 1024 * 1024u64;
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(BulkIo::writer("ha0", total, true))]);
    ens.start();
    // Crash a replica holder mid-write: the remainder of the stream
    // continues against the surviving mirrors.
    ens.engine
        .run_until(ens.engine.now() + SimDuration::from_millis(50));
    ens.engine.fail_node(ens.storage[0]);
    ens.run_to_completion(deadline());
    assert!(ens.client(0).finished(), "degraded writer must finish");
    assert_eq!(ens.client(0).stats().timeouts, 0);
    let dirty: usize = ens
        .coords
        .iter()
        .map(|&c| {
            ens.engine
                .actor::<CoordActor>(c)
                .coord
                .dirty_log_dump()
                .len()
        })
        .sum();
    assert!(dirty > 0, "missed mirror writes must be logged as dirty");

    // Recover: the coordinator sweep copies the dirty ranges back.
    ens.recover_storage_node(0);
    ens.engine
        .run_until(ens.engine.now() + SimDuration::from_secs(20));
    for &c in &ens.coords {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        assert_eq!(coord.dirty_log_dump().len(), 0, "resync must drain the log");
        assert!(
            coord.resync_history().iter().any(|&(s, _, _, _)| s == 0),
            "a resync of the victim must be on record"
        );
    }
    let violations = slice::check::check_structural(&ens);
    assert!(
        violations.is_empty(),
        "mirrors must converge after resync: {violations:?}"
    );

    // First read pass: still suspected, every read lands on the
    // survivors; the pass's trailing tick probes the recovered site and
    // the clean verdict readmits it.
    ens.client_mut(0)
        .set_workload(Box::new(BulkIo::reader("ha0", total)));
    let c0 = ens.clients[0];
    ens.engine.kick(c0);
    ens.run_to_completion(deadline());
    assert!(ens.client(0).finished(), "reader must finish");
    ens.engine
        .run_until(ens.engine.now() + SimDuration::from_secs(1));
    let proxy = ens.client(0).proxy().expect("slice client");
    assert!(
        proxy.suspected_sites().is_empty(),
        "probes must clear the suspicion after resync"
    );

    // Second pass: the readmitted mirror takes its share of the rotation.
    let before = {
        let node = &ens.engine.actor::<StorageActor>(ens.storage[0]).node;
        node.store().io_stats().1
    };
    ens.client_mut(0)
        .set_workload(Box::new(BulkIo::reader("ha0", total)));
    ens.engine.kick(c0);
    ens.run_to_completion(deadline());
    assert!(ens.client(0).finished(), "second reader must finish");
    assert_eq!(ens.client(0).stats().timeouts, 0);
    let after = {
        let node = &ens.engine.actor::<StorageActor>(ens.storage[0]).node;
        node.store().io_stats().1
    };
    assert!(after > before, "the recovered mirror must serve reads");
}

/// The chaos schedule pool (datagram duplication, bounded reordering,
/// storage/coordinator crashes, loss) passes every oracle, and two
/// processes produce identical outcomes.
#[test]
fn chaos_schedules_pass_oracles_deterministically() {
    use slice::check::{chaos_schedules, generate_scenario, run_schedule, Schedule};
    let run = || {
        let scenario = generate_scenario(21, 48);
        let reference = run_schedule(21, &scenario, &Schedule::default(), None);
        assert!(
            reference.violations.is_empty(),
            "reference run violated: {:?}",
            reference.violations
        );
        let horizon_ms = reference.finish.as_nanos() / 1_000_000;
        let mut outcomes = Vec::new();
        for sched in chaos_schedules(21, 5, horizon_ms) {
            let out = run_schedule(21, &scenario, &sched, Some(&reference.snapshot));
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                sched.describe(),
                out.violations
            );
            outcomes.push((out.finish, out.completed_ops, out.skipped_ops));
        }
        outcomes
    };
    assert_eq!(run(), run(), "chaos runs must replay identically");
}

#[test]
fn run_is_deterministic() {
    let run = |seed: u64| {
        let cfg = SliceConfig {
            seed,
            ..Default::default()
        };
        let untar = slice::workloads::Untar::new(0, 120);
        let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(untar)]);
        ens.start();
        ens.run_to_completion(deadline());
        let u = ens
            .client(0)
            .workload()
            .unwrap()
            .as_any()
            .downcast_ref::<slice::workloads::Untar>()
            .unwrap()
            .elapsed()
            .expect("finished");
        (u, ens.engine.packets_sent())
    };
    assert_eq!(run(5), run(5), "same seed, same trace");
}

/// Crash-window hazards at system scale: three different node classes
/// crash back-to-back while requests are in flight, so wire packets
/// outlive their destination's crash (and are dropped at arrival if the
/// node is still down), while queued local work and pending timers die
/// with the old incarnation instead of firing into the new one. Every
/// oracle passes, and the outcome is identical whether the engine runs
/// serially or sharded.
#[test]
fn mid_flight_crash_windows_pass_oracles_at_any_shard_count() {
    use slice::check::{
        generate_scenario, run_schedule, run_schedule_sharded, Injection, Schedule, ScheduleEvent,
    };
    let scenario = generate_scenario(33, 48);
    let reference = run_schedule(33, &scenario, &Schedule::default(), None);
    assert!(
        reference.violations.is_empty(),
        "reference run violated: {:?}",
        reference.violations
    );
    // Land the crashes mid-workload, with client requests in flight.
    let t0 = (reference.finish.as_nanos() / 1_000_000) / 4;
    let schedule = Schedule {
        events: vec![
            ScheduleEvent {
                at_ms: t0,
                inject: Injection::CrashDir {
                    site: 0,
                    down_ms: 400,
                },
            },
            ScheduleEvent {
                at_ms: t0 + 1,
                inject: Injection::CrashStorage {
                    site: 0,
                    down_ms: 400,
                },
            },
            ScheduleEvent {
                at_ms: t0 + 3,
                inject: Injection::CrashCoord {
                    site: 0,
                    down_ms: 300,
                },
            },
        ],
    };
    let serial = run_schedule(33, &scenario, &schedule, Some(&reference.snapshot));
    assert!(
        serial.violations.is_empty(),
        "crash-window run violated: {:?}",
        serial.violations
    );
    assert!(!serial.stalled, "crash-window run stalled");
    for shards in [2usize, 3] {
        let sharded =
            run_schedule_sharded(33, &scenario, &schedule, Some(&reference.snapshot), shards);
        assert_eq!(serial.finish, sharded.finish, "shards={shards}");
        assert_eq!(
            serial.completed_ops, sharded.completed_ops,
            "shards={shards}"
        );
        assert_eq!(serial.violations, sharded.violations, "shards={shards}");
    }
}

/// Two crash/recover cycles of the same storage node in quick succession
/// while mirrored writes are flowing: each crash bumps the node's
/// incarnation, so timers and queued work from the first life cannot
/// fire into the second. The workload finishes, resync drains the dirty
/// log, and every oracle passes.
#[test]
fn rapid_double_crash_recover_discards_stale_incarnation_work() {
    use slice::core::Workload;
    use slice::sim::SimTime;
    use slice::workloads::BulkIo;
    let cfg = SliceConfig {
        record_history: true,
        retain_data: true,
        ..Default::default()
    };
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(BulkIo::writer("dd0", 4 << 20, true))]);
    ens.start();
    for k in 0..2u64 {
        ens.engine
            .run_until(SimTime::from_nanos((20 + k * 15) * 1_000_000));
        ens.engine.fail_node(ens.storage[0]);
        ens.engine
            .run_until(SimTime::from_nanos((28 + k * 15) * 1_000_000));
        ens.recover_storage_node(0);
    }
    ens.run_to_completion(deadline());
    let w = common::workload_of::<BulkIo>(&ens, 0);
    assert!(w.finished(), "writer did not finish after double crash");
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
}

/// Clean coded roundtrip: pipelined writes to an erasure-coded file are
/// striped into k data + n−k parity shards, reads come back byte-exact,
/// and the coded-reconstruction oracle verifies every stripe decodes from
/// every k-subset of its shards.
#[test]
fn coded_write_read_roundtrip() {
    let cfg = SliceConfig {
        coded: Some((4, 2)),
        record_history: true,
        ..Default::default()
    };
    let mut script = vec![Step::Create {
        parent: 0,
        name: "ec0".into(),
        save: 1,
        mode_extra: 0,
    }];
    for i in 0..8u64 {
        script.push(Step::Write {
            fh: 1,
            offset: 64 * 1024 + i * 32768,
            len: 32768,
            pattern: 0x60 + i as u8,
            stable: StableHow::FileSync,
        });
    }
    for i in 0..8u64 {
        script.push(Step::Read {
            fh: 1,
            offset: 64 * 1024 + i * 32768,
            len: 32768,
            verify: Some(0x60 + i as u8),
        });
    }
    let ens = common::run_script(&cfg, ScriptWorkload::new(script, 4));
    assert_eq!(ens.client(0).stats().timeouts, 0);
    let proxy = ens.client(0).proxy().expect("slice client");
    let (coded_reads, coded_writes, degraded, recon, _) = proxy.ec_stats();
    assert!(coded_writes >= 8, "bulk writes must take the coded path");
    assert!(coded_reads >= 8, "bulk reads must take the coded path");
    assert_eq!(degraded, 0, "no degraded reads on a healthy ensemble");
    assert_eq!(recon, 0, "no reconstruction on a healthy ensemble");
    let mut violations = slice::check::check_structural_strict(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
}

/// With one storage node down and never recovered, reads of a coded file
/// reconstruct the missing shards from any k survivors: the workload
/// completes with zero timeouts and byte-exact data.
#[test]
fn coded_reads_reconstruct_while_node_stays_down() {
    let cfg = SliceConfig {
        coded: Some((4, 2)),
        ..Default::default()
    };
    let mut phase1 = vec![Step::Create {
        parent: 0,
        name: "ec1".into(),
        save: 1,
        mode_extra: 0,
    }];
    for i in 0..8u64 {
        phase1.push(Step::Write {
            fh: 1,
            offset: 64 * 1024 + i * 32768,
            len: 32768,
            pattern: 0x70 + i as u8,
            stable: StableHow::FileSync,
        });
    }
    let mut phase2 = vec![Step::Lookup {
        parent: 0,
        name: "ec1".into(),
        save: 1,
        expect_ok: true,
    }];
    for i in 0..8u64 {
        phase2.push(Step::Read {
            fh: 1,
            offset: 64 * 1024 + i * 32768,
            len: 32768,
            verify: Some(0x70 + i as u8),
        });
    }
    let ens = two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            let s = ens.storage[0];
            ens.engine.fail_node(s);
        },
        phase2,
        2,
    );
    assert_eq!(
        ens.client(0).stats().timeouts,
        0,
        "reads must reconstruct, not time out"
    );
    let proxy = ens.client(0).proxy().expect("slice client");
    assert!(
        proxy.suspected_sites().contains(&0),
        "the dead site must be under suspicion"
    );
    let (_, _, degraded, recon, recon_bytes) = proxy.ec_stats();
    assert!(degraded > 0, "reads of victim-held shards must degrade");
    assert!(recon > 0, "degraded reads must decode from k survivors");
    assert!(recon_bytes > 0, "reconstruction must account its bytes");
}

/// A coded write issued while one shard holder is down completes at
/// reduced redundancy, parks the dead legs in the dirty-region log, and
/// the post-recovery resync rebuilds the missing shards from k survivors
/// — after which every stripe again decodes from every k-subset.
#[test]
fn coded_degraded_write_resyncs_and_restores_redundancy() {
    use slice::core::actors::CoordActor;
    use slice::workloads::BulkIo;

    let cfg = SliceConfig {
        clients: 1,
        coded: Some((4, 2)),
        record_history: true,
        probe_interval_ms: 300,
        ..Default::default()
    };
    let total = 8 * 1024 * 1024u64;
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(BulkIo::writer("ec2", total, true))]);
    ens.start();
    ens.engine
        .run_until(ens.engine.now() + SimDuration::from_millis(50));
    ens.engine.fail_node(ens.storage[0]);
    ens.run_to_completion(deadline());
    assert!(ens.client(0).finished(), "degraded writer must finish");
    assert_eq!(ens.client(0).stats().timeouts, 0);
    let dirty: usize = ens
        .coords
        .iter()
        .map(|&c| {
            ens.engine
                .actor::<CoordActor>(c)
                .coord
                .dirty_log_dump()
                .len()
        })
        .sum();
    assert!(dirty > 0, "missed shard writes must be logged as dirty");

    ens.recover_storage_node(0);
    ens.engine
        .run_until(ens.engine.now() + SimDuration::from_secs(20));
    for &c in &ens.coords {
        let coord = &ens.engine.actor::<CoordActor>(c).coord;
        assert_eq!(
            coord.dirty_log_dump().len(),
            0,
            "shard rebuild must drain the log"
        );
        assert!(
            coord.resync_history().iter().any(|&(s, _, _, _)| s == 0),
            "a rebuild of the victim must be on record"
        );
    }
    let violations = slice::check::check_structural(&ens);
    assert!(
        violations.is_empty(),
        "stripes must re-satisfy the code after rebuild: {violations:?}"
    );
}
