//! Failure injection and recovery: dataless file managers recover from
//! their write-ahead logs in shared network storage (paper §2.3, §3.3.2),
//! and the µproxy may lose its soft state without compromising
//! correctness (§2.1).

mod common;

use common::{assert_errors, deadline};
use slice::core::{SliceConfig, SliceEnsemble};
use slice::nfsproto::StableHow;
use slice::sim::SimDuration;
use slice::workloads::{ScriptWorkload, Step};

/// Builds, runs phase one to completion, applies `fault`, then runs phase
/// two on the same client and asserts it passes. Every run also records
/// the client-visible op history and is vetted by the slice-check
/// consistency oracles after quiescing.
fn two_phase(
    cfg: &SliceConfig,
    phase1: Vec<Step>,
    slots1: usize,
    fault: impl FnOnce(&mut SliceEnsemble),
    phase2: Vec<Step>,
    slots2: usize,
) -> SliceEnsemble {
    let cfg = SliceConfig {
        record_history: true,
        ..cfg.clone()
    };
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(phase1, slots1))]);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    fault(&mut ens);
    ens.client_mut(0)
        .set_workload(Box::new(ScriptWorkload::new(phase2, slots2)));
    let c0 = ens.clients[0];
    ens.engine.kick(c0);
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    ens
}

#[test]
fn directory_server_recovers_from_wal() {
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Mkdir {
            parent: 0,
            name: "stable".into(),
            save: 1,
        },
        Step::Create {
            parent: 1,
            name: "kept".into(),
            save: 2,
            mode_extra: 0,
        },
        Step::Write {
            fh: 2,
            offset: 0,
            len: 3000,
            pattern: 0x42,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "stable".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Lookup {
            parent: 1,
            name: "kept".into(),
            save: 2,
            expect_ok: true,
        },
        Step::Read {
            fh: 2,
            offset: 0,
            len: 3000,
            verify: Some(0x42),
        },
        // The volume is fully writable again after failover.
        Step::Create {
            parent: 1,
            name: "after".into(),
            save: 3,
            mode_extra: 0,
        },
    ];
    two_phase(
        &cfg,
        phase1,
        3,
        |ens| {
            // Crash and restart the (only) directory server: volatile
            // cells are lost, the WAL in shared storage survives.
            let dir = ens.dirs[0];
            ens.engine.fail_node(dir);
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(2));
            ens.engine.recover_node(dir);
        },
        phase2,
        4,
    );
}

#[test]
fn smallfile_server_recovers_from_wal() {
    let cfg = SliceConfig {
        sf_servers: 1,
        ..Default::default()
    };
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "small".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 10_000,
            pattern: 0x66,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "small".into(),
            save: 1,
            expect_ok: true,
        },
        // The data was stable in the backing storage objects before the
        // crash; recovery rebuilds the map records and re-fetches it.
        Step::Read {
            fh: 1,
            offset: 0,
            len: 10_000,
            verify: Some(0x66),
        },
    ];
    two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            let sf = ens.sfs[0];
            ens.engine.fail_node(sf);
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(2));
            ens.engine.recover_node(sf);
        },
        phase2,
        2,
    );
}

#[test]
fn storage_node_restart_changes_verifier_but_keeps_stable_data() {
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "bulk".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            pattern: 0x11,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "bulk".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Read {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            verify: Some(0x11),
        },
    ];
    let ens = two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            for &s in &ens.storage.clone() {
                ens.engine.fail_node(s);
            }
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(1));
            for &s in &ens.storage.clone() {
                ens.engine.recover_node(s);
            }
        },
        phase2,
        2,
    );
    for &s in &ens.storage {
        let actor = ens.engine.actor::<slice::core::actors::StorageActor>(s);
        assert!(
            actor.node.verifier() > 1,
            "restart must change the write verifier"
        );
    }
}

#[test]
fn uproxy_state_loss_is_transparent() {
    // Drop the µproxy's entire soft state between phases: the paper
    // requires this to be safe ("free to discard its state ... without
    // compromising correctness").
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "f".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 5000,
            pattern: 0x33,
            stable: StableHow::FileSync,
        },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "f".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Read {
            fh: 1,
            offset: 0,
            len: 5000,
            verify: Some(0x33),
        },
        Step::Write {
            fh: 1,
            offset: 0,
            len: 100,
            pattern: 0x44,
            stable: StableHow::FileSync,
        },
        Step::Read {
            fh: 1,
            offset: 0,
            len: 100,
            verify: Some(0x44),
        },
    ];
    two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            ens.client_mut(0)
                .proxy_mut()
                .expect("slice client")
                .lose_state();
        },
        phase2,
        2,
    );
}

#[test]
fn coordinator_recovers_open_intents() {
    // Crash the coordinator right after work that opened intents; its
    // recovery scan must resolve them (probe, then complete or abort) and
    // the service must keep working.
    let cfg = SliceConfig::default();
    let phase1 = vec![
        Step::Create {
            parent: 0,
            name: "c".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            pattern: 0x21,
            stable: StableHow::Unstable,
        },
        Step::Commit { fh: 1 },
    ];
    let phase2 = vec![
        Step::Lookup {
            parent: 0,
            name: "c".into(),
            save: 1,
            expect_ok: true,
        },
        Step::Write {
            fh: 1,
            offset: 192 * 1024,
            len: 32768,
            pattern: 0x22,
            stable: StableHow::Unstable,
        },
        Step::Commit { fh: 1 },
        Step::Read {
            fh: 1,
            offset: 192 * 1024,
            len: 32768,
            verify: Some(0x22),
        },
    ];
    let ens = two_phase(
        &cfg,
        phase1,
        2,
        |ens| {
            let coord = ens.coords[0];
            ens.engine.fail_node(coord);
            ens.engine
                .run_until(ens.engine.now() + SimDuration::from_secs(1));
            ens.engine.recover_node(coord);
        },
        phase2,
        2,
    );
    let coord = ens
        .engine
        .actor::<slice::core::actors::CoordActor>(ens.coords[0]);
    assert_eq!(
        coord.coord.open_intents(),
        0,
        "no intents may dangle after recovery"
    );
}

#[test]
fn sustained_packet_loss_with_bulk_transfer() {
    // 2% loss under a multi-block transfer: the end-to-end retransmission
    // machinery must deliver a fully intact file.
    let cfg = SliceConfig {
        seed: 99,
        record_history: true,
        ..Default::default()
    };
    let mut steps = vec![Step::Create {
        parent: 0,
        name: "lossy".into(),
        save: 1,
        mode_extra: 0,
    }];
    for i in 0..6u64 {
        steps.push(Step::Write {
            fh: 1,
            offset: i * 32768,
            len: 32768,
            pattern: 0x80 + i as u8,
            stable: StableHow::FileSync,
        });
    }
    for i in 0..6u64 {
        steps.push(Step::Read {
            fh: 1,
            offset: i * 32768,
            len: 32768,
            verify: Some(0x80 + i as u8),
        });
    }
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(steps, 2))]);
    ens.engine.set_loss_prob(0.02);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
}

#[test]
fn run_is_deterministic() {
    let run = |seed: u64| {
        let cfg = SliceConfig {
            seed,
            ..Default::default()
        };
        let untar = slice::workloads::Untar::new(0, 120);
        let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(untar)]);
        ens.start();
        ens.run_to_completion(deadline());
        let u = ens
            .client(0)
            .workload()
            .unwrap()
            .as_any()
            .downcast_ref::<slice::workloads::Untar>()
            .unwrap()
            .elapsed()
            .expect("finished");
        (u, ens.engine.packets_sent())
    };
    assert_eq!(run(5), run(5), "same seed, same trace");
}
