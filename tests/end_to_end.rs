//! End-to-end integration: full ensembles carrying real encoded NFS
//! packets through the simulated network, the µproxy, and every server
//! class.

mod common;

use common::{assert_errors, deadline, run_script, workload_of};
use slice::core::{EnsemblePolicy, SliceConfig, SliceEnsemble};
use slice::nfsproto::{Sattr3, StableHow};
use slice::workloads::{ScriptWorkload, Step, MODE_MIRRORED};

#[test]
fn smoke_create_write_read() {
    let cfg = SliceConfig::default();
    let steps = vec![
        Step::Mkdir {
            parent: 0,
            name: "dir".into(),
            save: 1,
        },
        Step::Create {
            parent: 1,
            name: "file".into(),
            save: 2,
            mode_extra: 0,
        },
        Step::Write {
            fh: 2,
            offset: 0,
            len: 8192,
            pattern: 0xAB,
            stable: StableHow::FileSync,
        },
        Step::Read {
            fh: 2,
            offset: 0,
            len: 8192,
            verify: Some(0xAB),
        },
        Step::Getattr {
            fh: 2,
            expect_size: Some(8192),
        },
    ];
    run_script(&cfg, ScriptWorkload::new(steps, 3));
}

#[test]
fn large_file_spans_threshold() {
    // A file larger than the 64 KB threshold: its head lives on the
    // small-file servers, its tail is striped over the storage array, and
    // a reader must see one coherent byte sequence.
    let cfg = SliceConfig::default();
    let mut steps = vec![Step::Create {
        parent: 0,
        name: "big".into(),
        save: 1,
        mode_extra: 0,
    }];
    // Write 8 x 32 KB = 256 KB with distinct patterns.
    for i in 0..8u64 {
        steps.push(Step::Write {
            fh: 1,
            offset: i * 32768,
            len: 32768,
            pattern: 0x10 + i as u8,
            stable: StableHow::Unstable,
        });
    }
    steps.push(Step::Commit { fh: 1 });
    for i in 0..8u64 {
        steps.push(Step::Read {
            fh: 1,
            offset: i * 32768,
            len: 32768,
            verify: Some(0x10 + i as u8),
        });
    }
    steps.push(Step::Getattr {
        fh: 1,
        expect_size: Some(256 * 1024),
    });
    run_script(&cfg, ScriptWorkload::new(steps, 2));
}

#[test]
fn commit_pushes_size_to_directory_server() {
    // After a commit, the directory server's *authoritative* attributes
    // must reflect bulk writes that bypassed it entirely.
    let cfg = SliceConfig::default();
    let steps = vec![
        Step::Create {
            parent: 0,
            name: "pushed".into(),
            save: 1,
            mode_extra: 0,
        },
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 32768,
            pattern: 1,
            stable: StableHow::Unstable,
        },
        Step::Commit { fh: 1 },
    ];
    let ens = run_script(&cfg, ScriptWorkload::new(steps, 2));
    // Inspect the file's attribute cell on the directory server directly.
    // File ids from site 0 start at 2; "pushed" is the first created file.
    let dir = ens
        .engine
        .actor::<slice::core::actors::DirActor>(ens.dirs[0]);
    let attr = dir.server.attr_of(2).expect("attr cell");
    assert_eq!(
        attr.size,
        128 * 1024 + 32768,
        "setattr push-back must update size"
    );
}

#[test]
fn mirrored_file_lands_on_two_nodes() {
    let cfg = SliceConfig {
        storage_nodes: 4,
        ..Default::default()
    };
    let steps = vec![
        Step::Create {
            parent: 0,
            name: "m".into(),
            save: 1,
            mode_extra: MODE_MIRRORED,
        },
        Step::Write {
            fh: 1,
            offset: 128 * 1024,
            len: 65536,
            pattern: 0x77,
            stable: StableHow::FileSync,
        },
        Step::Read {
            fh: 1,
            offset: 128 * 1024,
            len: 65536,
            verify: Some(0x77),
        },
    ];
    let ens = run_script(&cfg, ScriptWorkload::new(steps, 2));
    // The stripe must exist on exactly two storage nodes.
    let holders = ens
        .storage
        .iter()
        .filter(|&&n| {
            let actor = ens.engine.actor::<slice::core::actors::StorageActor>(n);
            actor.node.store().size(2) > 0
        })
        .count();
    assert_eq!(holders, 2, "mirrored stripe must have two replicas");
}

#[test]
fn rename_link_remove_flow() {
    let cfg = SliceConfig::default();
    let steps = vec![
        Step::Mkdir {
            parent: 0,
            name: "a".into(),
            save: 1,
        },
        Step::Mkdir {
            parent: 0,
            name: "b".into(),
            save: 2,
        },
        Step::Create {
            parent: 1,
            name: "f".into(),
            save: 3,
            mode_extra: 0,
        },
        Step::Write {
            fh: 3,
            offset: 0,
            len: 100,
            pattern: 9,
            stable: StableHow::FileSync,
        },
        Step::Rename {
            from: 1,
            from_name: "f".into(),
            to: 2,
            to_name: "g".into(),
        },
        Step::Lookup {
            parent: 1,
            name: "f".into(),
            save: 4,
            expect_ok: false,
        },
        Step::Lookup {
            parent: 2,
            name: "g".into(),
            save: 4,
            expect_ok: true,
        },
        Step::Read {
            fh: 4,
            offset: 0,
            len: 100,
            verify: Some(9),
        },
        Step::Link {
            fh: 4,
            parent: 1,
            name: "hard".into(),
        },
        Step::Remove {
            parent: 2,
            name: "g".into(),
        },
        // Data survives through the second link.
        Step::Lookup {
            parent: 1,
            name: "hard".into(),
            save: 5,
            expect_ok: true,
        },
        Step::Read {
            fh: 5,
            offset: 0,
            len: 100,
            verify: Some(9),
        },
        Step::Remove {
            parent: 1,
            name: "hard".into(),
        },
        Step::Lookup {
            parent: 1,
            name: "hard".into(),
            save: 5,
            expect_ok: false,
        },
    ];
    run_script(&cfg, ScriptWorkload::new(steps, 6));
}

#[test]
fn symlink_readdir_and_truncate() {
    let cfg = SliceConfig::default();
    let steps = vec![
        Step::Mkdir {
            parent: 0,
            name: "d".into(),
            save: 1,
        },
        Step::Create {
            parent: 1,
            name: "f1".into(),
            save: 2,
            mode_extra: 0,
        },
        Step::Create {
            parent: 1,
            name: "f2".into(),
            save: 3,
            mode_extra: 0,
        },
        Step::Symlink {
            parent: 1,
            name: "ln".into(),
            target: "f1".into(),
            save: 4,
        },
        Step::Readlink {
            fh: 4,
            expect: "f1".into(),
        },
        Step::ReaddirCount { fh: 1, expect: 3 },
        // Truncate shrinks data.
        Step::Write {
            fh: 2,
            offset: 0,
            len: 20000,
            pattern: 5,
            stable: StableHow::FileSync,
        },
        Step::Setattr {
            fh: 2,
            attr: Sattr3 {
                size: Some(100),
                ..Default::default()
            },
        },
        Step::Getattr {
            fh: 2,
            expect_size: Some(100),
        },
    ];
    run_script(&cfg, ScriptWorkload::new(steps, 5));
}

#[test]
fn name_hashing_ensemble_end_to_end() {
    let cfg = SliceConfig {
        dir_servers: 4,
        policy: EnsemblePolicy::NameHashing,
        ..Default::default()
    };
    let mut steps = vec![Step::Mkdir {
        parent: 0,
        name: "spread".into(),
        save: 1,
    }];
    for i in 0..24 {
        steps.push(Step::Create {
            parent: 1,
            name: format!("f{i}"),
            save: 2,
            mode_extra: 0,
        });
    }
    for i in 0..24 {
        steps.push(Step::Lookup {
            parent: 1,
            name: format!("f{i}"),
            save: 2,
            expect_ok: true,
        });
    }
    // Readdir chains across all four sites.
    steps.push(Step::ReaddirCount { fh: 1, expect: 24 });
    let ens = run_script(&cfg, ScriptWorkload::new(steps, 3));
    // Entries really are spread over the sites.
    let counts: Vec<usize> = ens
        .dirs
        .iter()
        .map(|&d| {
            ens.engine
                .actor::<slice::core::actors::DirActor>(d)
                .server
                .name_cells()
        })
        .collect();
    assert!(
        counts.iter().filter(|&&c| c > 0).count() >= 3,
        "spread: {counts:?}"
    );
}

#[test]
fn mkdir_switching_redirects_under_load() {
    let cfg = SliceConfig {
        dir_servers: 4,
        policy: EnsemblePolicy::MkdirSwitching {
            redirect_millis: 1000,
        },
        ..Default::default()
    };
    let mut steps = Vec::new();
    for i in 0..16 {
        steps.push(Step::Mkdir {
            parent: 0,
            name: format!("d{i}"),
            save: 1,
        });
        steps.push(Step::Create {
            parent: 1,
            name: "kid".into(),
            save: 2,
            mode_extra: 0,
        });
        steps.push(Step::Lookup {
            parent: 1,
            name: "kid".into(),
            save: 2,
            expect_ok: true,
        });
    }
    let ens = run_script(&cfg, ScriptWorkload::new(steps, 3));
    // With p = 1 the directories spread across sites.
    let with_cells = ens
        .dirs
        .iter()
        .filter(|&&d| {
            ens.engine
                .actor::<slice::core::actors::DirActor>(d)
                .server
                .attr_cells()
                > 0
        })
        .count();
    assert!(with_cells >= 3, "redirected mkdirs must spread attr cells");
}

#[test]
fn two_clients_share_the_volume() {
    let cfg = SliceConfig {
        clients: 2,
        ..Default::default()
    };
    let w0 = ScriptWorkload::new(
        vec![
            Step::Mkdir {
                parent: 0,
                name: "shared".into(),
                save: 1,
            },
            Step::Create {
                parent: 1,
                name: "from0".into(),
                save: 2,
                mode_extra: 0,
            },
            Step::Write {
                fh: 2,
                offset: 0,
                len: 512,
                pattern: 0xA0,
                stable: StableHow::FileSync,
            },
        ],
        3,
    );
    let idle = ScriptWorkload::new(vec![], 1);
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(w0), Box::new(idle)]);
    // Client 0 sets up; client 1 then reads what client 0 wrote.
    ens.engine.kick(ens.clients[0]);
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    // Start a second phase on client 1.
    let w1 = ScriptWorkload::new(
        vec![
            Step::Lookup {
                parent: 0,
                name: "shared".into(),
                save: 1,
                expect_ok: true,
            },
            Step::Lookup {
                parent: 1,
                name: "from0".into(),
                save: 2,
                expect_ok: true,
            },
            Step::Read {
                fh: 2,
                offset: 0,
                len: 512,
                verify: Some(0xA0),
            },
        ],
        3,
    );
    ens.client_mut(1).set_workload(Box::new(w1));
    ens.engine.kick(ens.clients[1]);
    ens.run_to_completion(deadline());
    assert_errors(&ens, 1);
}

#[test]
fn packet_loss_is_recovered_by_retransmission() {
    let cfg = SliceConfig {
        seed: 7,
        ..Default::default()
    };
    let steps = vec![
        Step::Mkdir {
            parent: 0,
            name: "lossy".into(),
            save: 1,
        },
        Step::Create {
            parent: 1,
            name: "f".into(),
            save: 2,
            mode_extra: 0,
        },
        Step::Write {
            fh: 2,
            offset: 0,
            len: 4096,
            pattern: 3,
            stable: StableHow::FileSync,
        },
        Step::Read {
            fh: 2,
            offset: 0,
            len: 4096,
            verify: Some(3),
        },
        Step::Remove {
            parent: 1,
            name: "f".into(),
        },
        Step::Lookup {
            parent: 1,
            name: "f".into(),
            save: 2,
            expect_ok: false,
        },
    ];
    let script = ScriptWorkload::new(steps, 3);
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(script)]);
    ens.engine.set_loss_prob(0.05);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    let stats = ens.client(0).stats();
    // With 5% loss over several dozen packets, retransmissions are
    // overwhelmingly likely (the seed makes this deterministic).
    assert!(
        stats.retransmits > 0,
        "expected at least one retransmission"
    );
}

#[test]
fn untar_runs_clean() {
    let cfg = SliceConfig::default();
    let untar = slice::workloads::Untar::new(0, 600);
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(untar)]);
    ens.start();
    ens.run_to_completion(deadline());
    assert!(ens.client(0).finished(), "untar did not finish");
    let u: &slice::workloads::Untar = workload_of(&ens, 0);
    assert!(u.elapsed().is_some());
    assert!(u.nfs_ops() > 3000, "ops {}", u.nfs_ops());
}

#[test]
fn reconfiguration_with_lazy_table_refresh() {
    // Build a 2-site name-hashing ensemble, populate it, then move every
    // logical slot to site 1. µproxies discover the change lazily: their
    // first misdirected request is bounced (JUKEBOX), they refetch the
    // table, and RPC retransmission re-routes through it (§3.3.1).
    let cfg = SliceConfig {
        dir_servers: 2,
        policy: EnsemblePolicy::NameHashing,
        ..Default::default()
    };
    let mut steps = vec![Step::Mkdir {
        parent: 0,
        name: "r".into(),
        save: 1,
    }];
    for i in 0..12 {
        steps.push(Step::Create {
            parent: 1,
            name: format!("f{i}"),
            save: 2,
            mode_extra: 0,
        });
    }
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(steps, 3))]);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    // Rebalance everything onto site 1.
    let new_map = vec![1u32; slice::hashes::LOGICAL_SLOTS];
    ens.reconfigure_dir_servers(new_map);
    let site1_cells = ens
        .engine
        .actor::<slice::core::actors::DirActor>(ens.dirs[1])
        .server
        .name_cells();
    assert!(
        site1_cells >= 13,
        "entries migrated to site 1: {site1_cells}"
    );
    // Phase 2: the same client (stale table) looks everything up again.
    let mut steps = vec![Step::Lookup {
        parent: 0,
        name: "r".into(),
        save: 1,
        expect_ok: true,
    }];
    for i in 0..12 {
        steps.push(Step::Lookup {
            parent: 1,
            name: format!("f{i}"),
            save: 2,
            expect_ok: true,
        });
    }
    steps.push(Step::Create {
        parent: 1,
        name: "post".into(),
        save: 2,
        mode_extra: 0,
    });
    ens.client_mut(0)
        .set_workload(Box::new(ScriptWorkload::new(steps, 3)));
    let c0 = ens.clients[0];
    ens.engine.kick(c0);
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    // The µproxy observed at least one bounce and refreshed its table.
    let proxy = ens.client(0).proxy().unwrap();
    assert!(
        proxy.stale_table_bounces() > 0,
        "expected a misdirect bounce"
    );
    assert!(proxy.dir_table_generation() >= 2, "table refreshed");
    let d1 = ens
        .engine
        .actor::<slice::core::actors::DirActor>(ens.dirs[1]);
    assert!(d1.server.misdirected() == 0 || d1.server.misdirected() > 0); // touch API
    let d0 = ens
        .engine
        .actor::<slice::core::actors::DirActor>(ens.dirs[0]);
    assert!(d0.server.misdirected() > 0, "site 0 bounced stale requests");
}
