//! Shared helpers for the integration suite.

use slice::core::{SliceConfig, SliceEnsemble, Workload};
use slice::sim::{SimDuration, SimTime};
use slice::workloads::ScriptWorkload;

pub fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(300)
}

/// Runs one scripted client against `cfg`, panicking on validation errors.
#[allow(dead_code)]
pub fn run_script(cfg: &SliceConfig, script: ScriptWorkload) -> SliceEnsemble {
    let mut ens = SliceEnsemble::build(cfg, vec![Box::new(script)]);
    ens.start();
    ens.run_to_completion(deadline());
    assert_errors(&ens, 0);
    ens
}

/// Asserts client `i`'s script finished cleanly.
#[allow(dead_code)]
pub fn assert_errors(ens: &SliceEnsemble, i: usize) {
    let client = ens.client(i);
    assert!(client.finished(), "client {i} did not finish");
    let wl = client.workload().expect("workload");
    let script = wl
        .as_any()
        .downcast_ref::<ScriptWorkload>()
        .expect("script workload");
    assert!(
        script.errors.is_empty(),
        "client {i} errors: {:?}",
        script.errors
    );
}

/// Convenience: downcast a finished workload.
#[allow(dead_code)]
pub fn workload_of<W: Workload>(ens: &SliceEnsemble, i: usize) -> &W {
    ens.client(i)
        .workload()
        .expect("workload")
        .as_any()
        .downcast_ref::<W>()
        .expect("workload type")
}
