//! Full-stack stress: a randomized operation stream driven through the
//! complete ensemble (real packets, µproxy, every server class), checked
//! against a flat in-memory model of the volume. This is the end-to-end
//! analogue of the per-crate model-based property tests.

mod common;

use common::deadline;
use slice::core::{ClientIo, EnsemblePolicy, SliceConfig, SliceEnsemble, Workload};
use slice::nfsproto::{Fhandle, NfsReply, NfsRequest, NfsStatus, ReplyBody, Sattr3, StableHow};
use slice::sim::{FxHashMap, Rng};

/// A model file: pattern byte per written 1 KB chunk (0 = hole).
#[derive(Debug, Clone, Default)]
struct ModelFile {
    chunks: Vec<u8>,
}

impl ModelFile {
    fn write(&mut self, offset: u64, len: u32, pattern: u8) {
        let first = (offset / 1024) as usize;
        let last = ((offset + u64::from(len)) / 1024) as usize;
        if self.chunks.len() < last {
            self.chunks.resize(last, 0);
        }
        for c in &mut self.chunks[first..last] {
            *c = pattern;
        }
    }

    fn size(&self) -> u64 {
        self.chunks.len() as u64 * 1024
    }
}

#[derive(Debug)]
struct Model {
    names: FxHashMap<String, u64>,
    files: FxHashMap<u64, ModelFile>,
    fhs: FxHashMap<u64, Fhandle>,
}

/// The randomized workload: issues one op at a time, validating each
/// reply against the model before issuing the next.
struct Stress {
    rng: Rng,
    ops_left: u32,
    model: Model,
    pending: Option<PendingCheck>,
    errors: Vec<String>,
    done: bool,
    next_name: u32,
}

#[derive(Debug)]
enum PendingCheck {
    Create {
        name: String,
    },
    Remove {
        name: String,
        existed: bool,
    },
    Lookup {
        name: String,
    },
    Write {
        id: u64,
        offset: u64,
        len: u32,
        pattern: u8,
    },
    Read {
        id: u64,
        offset: u64,
        len: u32,
    },
    Getattr {
        id: u64,
    },
    Rename {
        from: String,
        to: String,
        existed: bool,
    },
    Commit,
}

impl Stress {
    fn new(seed: u64, ops: u32) -> Self {
        Stress {
            rng: Rng::seed_from_u64(seed),
            ops_left: ops,
            model: Model {
                names: Default::default(),
                files: Default::default(),
                fhs: Default::default(),
            },
            pending: None,
            errors: Vec::new(),
            done: false,
            next_name: 0,
        }
    }

    fn random_name(&mut self) -> String {
        // Small namespace: plenty of create/remove collisions.
        format!("s{}", self.rng.gen_range(0..24u32))
    }

    fn random_file(&mut self) -> Option<u64> {
        if self.model.names.is_empty() {
            return None;
        }
        let keys: Vec<&String> = self.model.names.keys().collect();
        let k = keys[self.rng.gen_range(0..keys.len())];
        Some(self.model.names[k])
    }

    fn issue(&mut self, io: &mut ClientIo<'_, '_>) {
        if self.ops_left == 0 {
            self.done = true;
            return;
        }
        self.ops_left -= 1;
        let root = Fhandle::root();
        let dice = self.rng.gen_range(0..100u32);
        let (req, check) = if dice < 25 || self.model.names.is_empty() {
            let name = self.random_name();
            self.next_name += 1;
            (
                NfsRequest::Create {
                    dir: root,
                    name: name.clone(),
                    attr: Sattr3 {
                        mode: Some(0o644),
                        ..Default::default()
                    },
                },
                PendingCheck::Create { name },
            )
        } else if dice < 35 {
            let name = self.random_name();
            let existed = self.model.names.contains_key(&name);
            (
                NfsRequest::Remove {
                    dir: root,
                    name: name.clone(),
                },
                PendingCheck::Remove { name, existed },
            )
        } else if dice < 50 {
            let name = self.random_name();
            (
                NfsRequest::Lookup {
                    dir: root,
                    name: name.clone(),
                },
                PendingCheck::Lookup { name },
            )
        } else if dice < 70 {
            let id = self.random_file().expect("nonempty");
            let fh = self.model.fhs[&id];
            // 1 KB-aligned writes from tiny to threshold-crossing.
            let offset = u64::from(self.rng.gen_range(0..96u32)) * 1024;
            let len = self.rng.gen_range(1..16u32) * 1024;
            let pattern = self.rng.gen_range(1..=255u8);
            (
                NfsRequest::Write {
                    fh,
                    offset,
                    stable: StableHow::FileSync,
                    data: vec![pattern; len as usize],
                },
                PendingCheck::Write {
                    id,
                    offset,
                    len,
                    pattern,
                },
            )
        } else if dice < 88 {
            let id = self.random_file().expect("nonempty");
            let fh = self.model.fhs[&id];
            let offset = u64::from(self.rng.gen_range(0..96u32)) * 1024;
            let len = self.rng.gen_range(1..16u32) * 1024;
            (
                NfsRequest::Read {
                    fh,
                    offset,
                    count: len,
                },
                PendingCheck::Read { id, offset, len },
            )
        } else if dice < 93 {
            let id = self.random_file().expect("nonempty");
            (
                NfsRequest::Getattr {
                    fh: self.model.fhs[&id],
                },
                PendingCheck::Getattr { id },
            )
        } else if dice < 97 {
            let from = self.random_name();
            let to = self.random_name();
            let existed = self.model.names.contains_key(&from);
            (
                NfsRequest::Rename {
                    from_dir: root,
                    from_name: from.clone(),
                    to_dir: root,
                    to_name: to.clone(),
                },
                PendingCheck::Rename { from, to, existed },
            )
        } else {
            let id = self.random_file().expect("nonempty");
            (
                NfsRequest::Commit {
                    fh: self.model.fhs[&id],
                    offset: 0,
                    count: 0,
                },
                PendingCheck::Commit,
            )
        };
        if std::env::var("STRESS_TRACE").is_ok() {
            eprintln!("op: {check:?}");
        }
        self.pending = Some(check);
        io.call(0, req);
    }

    fn check(&mut self, reply: &NfsReply) {
        let check = self.pending.take().expect("pending");
        let mut fail = |msg: String| self.errors.push(msg);
        match check {
            PendingCheck::Create { name } => match self.model.names.entry(name.clone()) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    if reply.status != NfsStatus::Exist {
                        fail(format!("create {name}: {:?}, wanted Exist", reply.status));
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    if reply.status != NfsStatus::Ok {
                        fail(format!("create {name}: {:?}", reply.status));
                    } else if let ReplyBody::Create { fh: Some(fh) } = &reply.body {
                        slot.insert(fh.file_id());
                        self.model.files.insert(fh.file_id(), ModelFile::default());
                        self.model.fhs.insert(fh.file_id(), *fh);
                    }
                }
            },
            PendingCheck::Remove { name, existed } => {
                let want = if existed {
                    NfsStatus::Ok
                } else {
                    NfsStatus::NoEnt
                };
                if reply.status != want {
                    fail(format!(
                        "remove {name}: {:?}, wanted {want:?}",
                        reply.status
                    ));
                }
                if existed {
                    if let Some(id) = self.model.names.remove(&name) {
                        self.model.files.remove(&id);
                        self.model.fhs.remove(&id);
                    }
                }
            }
            PendingCheck::Lookup { name } => match self.model.names.get(&name) {
                Some(&id) => {
                    if reply.status != NfsStatus::Ok {
                        fail(format!("lookup {name}: {:?}", reply.status));
                    } else if let ReplyBody::Lookup { fh, .. } = &reply.body {
                        if fh.file_id() != id {
                            fail(format!("lookup {name}: id {} wanted {id}", fh.file_id()));
                        }
                    }
                }
                None => {
                    if reply.status != NfsStatus::NoEnt {
                        fail(format!("lookup {name}: {:?}, wanted NoEnt", reply.status));
                    }
                }
            },
            PendingCheck::Write {
                id,
                offset,
                len,
                pattern,
            } => {
                if reply.status != NfsStatus::Ok {
                    fail(format!("write: {:?}", reply.status));
                } else if let Some(f) = self.model.files.get_mut(&id) {
                    f.write(offset, len, pattern);
                }
            }
            PendingCheck::Read { id, offset, len } => {
                if reply.status != NfsStatus::Ok {
                    fail(format!("read: {:?}", reply.status));
                } else if let (Some(f), ReplyBody::Read { data, .. }) =
                    (self.model.files.get(&id), &reply.body)
                {
                    let avail = f.size().saturating_sub(offset).min(u64::from(len)) as usize;
                    if data.len() != avail {
                        fail(format!("read: got {} bytes, wanted {avail}", data.len()));
                    }
                    for (i, &b) in data.iter().enumerate() {
                        let chunk = ((offset + i as u64) / 1024) as usize;
                        let want = f.chunks.get(chunk).copied().unwrap_or(0);
                        if b != want {
                            fail(format!(
                                "read: byte {} of file {id} is {b:#x}, wanted {want:#x}",
                                offset + i as u64
                            ));
                            break;
                        }
                    }
                }
            }
            PendingCheck::Getattr { id } => {
                if reply.status != NfsStatus::Ok {
                    fail(format!("getattr: {:?}", reply.status));
                } else if let (Some(f), Some(attr)) =
                    (self.model.files.get(&id), reply.attr.as_ref())
                {
                    if attr.size != f.size() {
                        fail(format!(
                            "getattr file {id}: size {} wanted {}",
                            attr.size,
                            f.size()
                        ));
                    }
                }
            }
            PendingCheck::Rename { from, to, existed } => {
                let want = if existed {
                    NfsStatus::Ok
                } else {
                    NfsStatus::NoEnt
                };
                if reply.status != want {
                    fail(format!(
                        "rename {from}->{to}: {:?}, wanted {want:?}",
                        reply.status
                    ));
                }
                if existed {
                    if let Some(id) = self.model.names.remove(&from) {
                        if let Some(old) = self.model.names.insert(to, id) {
                            // Displaced file is gone.
                            self.model.files.remove(&old);
                            self.model.fhs.remove(&old);
                        }
                    }
                }
            }
            PendingCheck::Commit => {
                if reply.status != NfsStatus::Ok {
                    fail(format!("commit: {:?}", reply.status));
                }
            }
        }
    }
}

impl Workload for Stress {
    fn start(&mut self, io: &mut ClientIo<'_, '_>) {
        self.issue(io);
    }

    fn on_reply(&mut self, io: &mut ClientIo<'_, '_>, _tag: u64, reply: &NfsReply) {
        self.check(reply);
        if !self.errors.is_empty() {
            self.done = true;
            return;
        }
        self.issue(io);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn finished(&self) -> bool {
        self.done
    }
}

fn run_stress(cfg: SliceConfig, seed: u64, ops: u32) {
    let cfg = SliceConfig {
        record_history: true,
        ..cfg
    };
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(Stress::new(seed, ops))]);
    ens.start();
    ens.run_to_completion(deadline());
    let client = ens.client(0);
    assert!(client.finished(), "stress did not finish");
    let s = client
        .workload()
        .unwrap()
        .as_any()
        .downcast_ref::<Stress>()
        .unwrap();
    assert!(
        s.errors.is_empty(),
        "model divergence: {:?}",
        &s.errors[..s.errors.len().min(5)]
    );
    // Independent of the model: the recorded history must linearize and
    // the quiesced server state must satisfy every structural invariant.
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
}

#[test]
fn randomized_ops_match_model_mkdir_switching() {
    run_stress(
        SliceConfig {
            dir_servers: 2,
            policy: EnsemblePolicy::MkdirSwitching {
                redirect_millis: 300,
            },
            ..Default::default()
        },
        1001,
        600,
    );
}

#[test]
fn randomized_ops_match_model_name_hashing() {
    run_stress(
        SliceConfig {
            dir_servers: 3,
            policy: EnsemblePolicy::NameHashing,
            ..Default::default()
        },
        2002,
        600,
    );
}

#[test]
fn randomized_ops_match_model_under_packet_loss() {
    let cfg = SliceConfig {
        seed: 3003,
        record_history: true,
        ..Default::default()
    };
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(Stress::new(77, 300))]);
    ens.engine.set_loss_prob(0.01);
    ens.start();
    ens.run_to_completion(deadline());
    let client = ens.client(0);
    assert!(client.finished(), "stress did not finish under loss");
    let s = client
        .workload()
        .unwrap()
        .as_any()
        .downcast_ref::<Stress>()
        .unwrap();
    assert!(
        s.errors.is_empty(),
        "model divergence: {:?}",
        &s.errors[..s.errors.len().min(5)]
    );
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
}

#[test]
fn randomized_ops_match_model_with_block_maps() {
    run_stress(
        SliceConfig {
            use_block_maps: true,
            ..Default::default()
        },
        4004,
        400,
    );
}
