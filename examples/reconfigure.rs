//! Reconfiguration: rebalance the directory service onto a new routing
//! table while clients keep running (paper §3.3.1).
//!
//! The µproxy's routing table is a *hint*: after the rebalance, its next
//! misdirected request is bounced by the server, it refetches the table,
//! and the client's RPC retransmission re-routes the operation — no
//! client-visible errors, no volume boundaries moved.
//!
//! Run with: `cargo run --release --example reconfigure`

use slice::core::{actors::DirActor, EnsemblePolicy, SliceConfig, SliceEnsemble};
use slice::hashes::LOGICAL_SLOTS;
use slice::sim::{SimDuration, SimTime};
use slice::workloads::{ScriptWorkload, Step};

fn cells(ens: &SliceEnsemble) -> Vec<usize> {
    ens.dirs
        .iter()
        .map(|&d| ens.engine.actor::<DirActor>(d).server.name_cells())
        .collect()
}

fn main() {
    let cfg = SliceConfig {
        dir_servers: 3,
        policy: EnsemblePolicy::NameHashing,
        record_history: true,
        ..Default::default()
    };
    // Phase 1: populate the volume.
    let mut steps = vec![Step::Mkdir {
        parent: 0,
        name: "data".into(),
        save: 1,
    }];
    for i in 0..48 {
        steps.push(Step::Create {
            parent: 1,
            name: format!("f{i}"),
            save: 2,
            mode_extra: 0,
        });
    }
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(ScriptWorkload::new(steps, 3))]);
    ens.start();
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(60));
    println!("name cells per site before rebalance: {:?}", cells(&ens));

    // Rebalance: retire site 2, spreading its slots over sites 0 and 1
    // (an ensemble shrinking from three directory servers to two).
    let new_map: Vec<u32> = (0..LOGICAL_SLOTS).map(|i| (i % 2) as u32).collect();
    ens.reconfigure_dir_servers(new_map);
    println!("name cells per site after  rebalance: {:?}", cells(&ens));

    // Phase 2: the client (whose µproxy still holds the old table) reads
    // everything back and creates new files.
    let mut steps = vec![Step::Lookup {
        parent: 0,
        name: "data".into(),
        save: 1,
        expect_ok: true,
    }];
    for i in 0..48 {
        steps.push(Step::Lookup {
            parent: 1,
            name: format!("f{i}"),
            save: 2,
            expect_ok: true,
        });
    }
    steps.push(Step::Create {
        parent: 1,
        name: "after".into(),
        save: 2,
        mode_extra: 0,
    });
    ens.client_mut(0)
        .set_workload(Box::new(ScriptWorkload::new(steps, 3)));
    let c0 = ens.clients[0];
    ens.engine.kick(c0);
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(120));

    let script = ens
        .client(0)
        .workload()
        .unwrap()
        .as_any()
        .downcast_ref::<ScriptWorkload>()
        .unwrap();
    assert!(script.errors.is_empty(), "errors: {:?}", script.errors);
    let proxy = ens.client(0).proxy().unwrap();
    println!(
        "client finished cleanly: {} stale-table bounce(s), table generation {}",
        proxy.stale_table_bounces(),
        proxy.dir_table_generation()
    );
    let bounced: u64 = ens
        .dirs
        .iter()
        .map(|&d| ens.engine.actor::<DirActor>(d).server.misdirected())
        .sum();
    println!("servers bounced {bounced} misdirected request(s); all ops succeeded via retry");

    // Final audit: the slice-check oracles vet the recorded op history and
    // the rebalanced directory state (entry counts, hash chains, orphans).
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    println!("slice-check: structural + history oracles passed");
}
