//! Name-space scaling: run the paper's untar benchmark against one and
//! four directory servers under both distribution policies, showing how
//! interposed request routing spreads a single volume's name space
//! (paper §3.2, Figure 3).
//!
//! Run with: `cargo run --release --example name_scaling`

use slice::core::{EnsemblePolicy, SliceConfig, SliceEnsemble, Workload};
use slice::sim::{SimDuration, SimTime};
use slice::workloads::Untar;

fn run(procs: usize, dirs: usize, policy: EnsemblePolicy, files: u64) -> (f64, Vec<usize>) {
    let cfg = SliceConfig {
        clients: procs,
        dir_servers: dirs,
        policy,
        retain_data: false,
        ..Default::default()
    };
    let workloads: Vec<Box<dyn Workload>> = (0..procs)
        .map(|i| Box::new(Untar::new(i as u64, files)) as Box<dyn Workload>)
        .collect();
    let mut ens = SliceEnsemble::build(&cfg, workloads);
    ens.start();
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(3600));
    let mut total = 0.0;
    for i in 0..procs {
        let u = ens
            .client(i)
            .workload()
            .unwrap()
            .as_any()
            .downcast_ref::<Untar>()
            .unwrap();
        total += u.elapsed().expect("finished").as_secs_f64();
    }
    let cells: Vec<usize> = ens
        .dirs
        .iter()
        .map(|&d| {
            ens.engine
                .actor::<slice::core::actors::DirActor>(d)
                .server
                .name_cells()
        })
        .collect();
    (total / procs as f64, cells)
}

fn main() {
    let files = 1200u64;
    let procs = 8;
    println!("untar: {procs} processes x {files} files/dirs each\n");

    let (lat, cells) = run(
        procs,
        1,
        EnsemblePolicy::MkdirSwitching { redirect_millis: 0 },
        files,
    );
    println!("1 dir server               : {lat:6.2} s/process   cells {cells:?}");

    let (lat, cells) = run(
        procs,
        4,
        EnsemblePolicy::MkdirSwitching {
            redirect_millis: 250,
        },
        files,
    );
    println!("4 servers, mkdir switching : {lat:6.2} s/process   cells {cells:?}");

    let (lat, cells) = run(procs, 4, EnsemblePolicy::NameHashing, files);
    println!("4 servers, name hashing    : {lat:6.2} s/process   cells {cells:?}");

    println!("\nBoth policies spread one unified volume across the servers with no");
    println!("user-visible volume boundaries; each added directory server absorbs");
    println!("~6000 ops/s of name traffic (Figure 3).");
}
