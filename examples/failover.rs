//! Failover: crash a directory server mid-life and watch it recover from
//! its write-ahead log in shared network storage (paper §2.3).
//!
//! Run with: `cargo run --example failover`

use slice::core::{actors::DirActor, SliceConfig, SliceEnsemble};
use slice::nfsproto::StableHow;
use slice::sim::{SimDuration, SimTime};
use slice::workloads::{ScriptWorkload, Step};

fn main() {
    let cfg = SliceConfig {
        record_history: true,
        ..SliceConfig::default()
    };
    let phase1 = ScriptWorkload::new(
        vec![
            Step::Mkdir {
                parent: 0,
                name: "projects".into(),
                save: 1,
            },
            Step::Create {
                parent: 1,
                name: "paper.tex".into(),
                save: 2,
                mode_extra: 0,
            },
            Step::Write {
                fh: 2,
                offset: 0,
                len: 2000,
                pattern: b'S',
                stable: StableHow::FileSync,
            },
        ],
        3,
    );
    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(phase1)]);
    ens.start();
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(30));
    {
        let dir = ens.engine.actor::<DirActor>(ens.dirs[0]);
        println!(
            "before crash: directory server holds {} name cells, {} attr cells",
            dir.server.name_cells(),
            dir.server.attr_cells()
        );
        let (appends, batches, bytes) = dir.server.wal_stats();
        println!("  WAL: {appends} records in {batches} batched log writes ({bytes} bytes)");
    }

    println!("\n!! crashing the directory server (volatile state lost)");
    let dir_node = ens.dirs[0];
    ens.engine.fail_node(dir_node);
    {
        let dir = ens.engine.actor::<DirActor>(dir_node);
        println!(
            "after crash: {} name cells, {} attr cells",
            dir.server.name_cells(),
            dir.server.attr_cells()
        );
    }
    ens.engine
        .run_until(ens.engine.now() + SimDuration::from_secs(2));
    println!("recovering: failover replays backing objects + write-ahead log");
    ens.engine.recover_node(dir_node);

    // Phase two: everything is still there, and the volume is writable.
    let phase2 = ScriptWorkload::new(
        vec![
            Step::Lookup {
                parent: 0,
                name: "projects".into(),
                save: 1,
                expect_ok: true,
            },
            Step::Lookup {
                parent: 1,
                name: "paper.tex".into(),
                save: 2,
                expect_ok: true,
            },
            Step::Read {
                fh: 2,
                offset: 0,
                len: 2000,
                verify: Some(b'S'),
            },
            Step::Create {
                parent: 1,
                name: "rebuttal.tex".into(),
                save: 3,
                mode_extra: 0,
            },
        ],
        4,
    );
    ens.client_mut(0).set_workload(Box::new(phase2));
    let c0 = ens.clients[0];
    ens.engine.kick(c0);
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(60));

    let script = ens
        .client(0)
        .workload()
        .unwrap()
        .as_any()
        .downcast_ref::<ScriptWorkload>()
        .unwrap();
    assert!(
        script.errors.is_empty(),
        "post-recovery errors: {:?}",
        script.errors
    );
    {
        let dir = ens.engine.actor::<DirActor>(dir_node);
        println!(
            "after recovery: {} name cells, {} attr cells — all data verified, new create succeeded",
            dir.server.name_cells(),
            dir.server.attr_cells()
        );
    }

    // Final audit: the slice-check oracles vet the recorded op history and
    // the quiesced server state.
    let mut violations = slice::check::check_structural(&ens);
    violations.extend(slice::check::check_histories(&ens.histories()).0);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    println!("slice-check: structural + history oracles passed");
}
