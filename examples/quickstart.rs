//! Quickstart: build a Slice ensemble, make a directory tree, write a
//! file, and read it back — all through the interposed µproxy.
//!
//! Run with: `cargo run --example quickstart`

use slice::core::{SliceConfig, SliceEnsemble};
use slice::nfsproto::StableHow;
use slice::sim::{SimDuration, SimTime};
use slice::workloads::{ScriptWorkload, Step};

fn main() {
    // An ensemble: 1 client (with embedded µproxy), 1 directory server,
    // 2 small-file servers, 4 storage nodes, 1 coordinator.
    let cfg = SliceConfig::default();
    println!(
        "building Slice ensemble: {} dir / {} small-file / {} storage nodes",
        cfg.dir_servers, cfg.sf_servers, cfg.storage_nodes
    );

    let script = ScriptWorkload::new(
        vec![
            Step::Mkdir {
                parent: 0,
                name: "home".into(),
                save: 1,
            },
            Step::Mkdir {
                parent: 1,
                name: "user".into(),
                save: 2,
            },
            Step::Create {
                parent: 2,
                name: "notes.txt".into(),
                save: 3,
                mode_extra: 0,
            },
            // A small write lands on a small-file server...
            Step::Write {
                fh: 3,
                offset: 0,
                len: 4000,
                pattern: b'a',
                stable: StableHow::FileSync,
            },
            // ...while a write past the 64 KB threshold is striped
            // directly over the storage nodes, bypassing the managers.
            Step::Write {
                fh: 3,
                offset: 128 * 1024,
                len: 32768,
                pattern: b'z',
                stable: StableHow::Unstable,
            },
            Step::Commit { fh: 3 },
            Step::Read {
                fh: 3,
                offset: 0,
                len: 4000,
                verify: Some(b'a'),
            },
            Step::Read {
                fh: 3,
                offset: 128 * 1024,
                len: 32768,
                verify: Some(b'z'),
            },
            Step::Getattr {
                fh: 3,
                expect_size: Some(128 * 1024 + 32768),
            },
            Step::ReaddirCount { fh: 2, expect: 1 },
        ],
        4,
    );

    let mut ens = SliceEnsemble::build(&cfg, vec![Box::new(script)]);
    ens.start();
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(60));

    let client = ens.client(0);
    let script = client
        .workload()
        .unwrap()
        .as_any()
        .downcast_ref::<ScriptWorkload>()
        .unwrap();
    assert!(
        script.errors.is_empty(),
        "script errors: {:?}",
        script.errors
    );

    let stats = client.stats();
    println!("all steps verified");
    println!(
        "client issued {} NFS operations (mean latency {})",
        stats.ops,
        stats.latency.mean()
    );
    let proxy = client.proxy().unwrap();
    let (reqs, replies, absorbed, initiated) = proxy.traffic_stats();
    println!(
        "µproxy routed {reqs} requests / {replies} replies; absorbed {absorbed}, initiated {initiated} (attribute write-backs, intentions)"
    );
}
