//! Bulk I/O: the Table 2 scenario as a runnable demo — stream a large
//! file through the µproxy's striping (and mirrored-striping) policies
//! and report delivered bandwidth.
//!
//! Run with: `cargo run --release --example bulk_io`

use slice::core::{SliceConfig, SliceEnsemble, Workload};
use slice::sim::{SimDuration, SimTime};
use slice::workloads::BulkIo;

fn run(clients: usize, bytes: u64, mirrored: bool) -> (f64, f64) {
    let cfg = SliceConfig {
        clients,
        storage_nodes: 8,
        retain_data: false,
        ..Default::default()
    };
    let writers: Vec<Box<dyn Workload>> = (0..clients)
        .map(|i| Box::new(BulkIo::writer(&format!("dd{i}"), bytes, mirrored)) as Box<dyn Workload>)
        .collect();
    let mut ens = SliceEnsemble::build(&cfg, writers);
    ens.start();
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(3600));
    let mut slowest_write = f64::MAX;
    for i in 0..clients {
        let w = ens
            .client(i)
            .workload()
            .unwrap()
            .as_any()
            .downcast_ref::<BulkIo>()
            .unwrap();
        slowest_write = slowest_write.min(w.bandwidth().expect("finished"));
    }
    // Read the files back.
    for i in 0..clients {
        ens.client_mut(i)
            .set_workload(Box::new(BulkIo::reader(&format!("dd{i}"), bytes)));
    }
    for &c in &ens.clients.clone() {
        ens.engine.kick(c);
    }
    ens.run_to_completion(SimTime::ZERO + SimDuration::from_secs(7200));
    let mut slowest_read = f64::MAX;
    for i in 0..clients {
        let r = ens
            .client(i)
            .workload()
            .unwrap()
            .as_any()
            .downcast_ref::<BulkIo>()
            .unwrap();
        slowest_read = slowest_read.min(r.bandwidth().expect("finished"));
    }
    (
        slowest_write * clients as f64,
        slowest_read * clients as f64,
    )
}

fn main() {
    let bytes: u64 = 256 << 20;
    println!(
        "streaming {} MB per client over 8 storage nodes\n",
        bytes >> 20
    );
    let (w, r) = run(1, bytes, false);
    println!(
        "1 client,  striped : write {:6.1} MB/s   read {:6.1} MB/s",
        w / 1e6,
        r / 1e6
    );
    let (w, r) = run(1, bytes, true);
    println!(
        "1 client,  mirrored: write {:6.1} MB/s   read {:6.1} MB/s",
        w / 1e6,
        r / 1e6
    );
    let (w, r) = run(8, bytes, false);
    println!(
        "8 clients, striped : write {:6.1} MB/s   read {:6.1} MB/s",
        w / 1e6,
        r / 1e6
    );
    let (w, r) = run(8, bytes, true);
    println!(
        "8 clients, mirrored: write {:6.1} MB/s   read {:6.1} MB/s",
        w / 1e6,
        r / 1e6
    );
    println!("\n(mirroring halves aggregate bandwidth: every block is written twice,");
    println!(" and mirror-alternating reads leave prefetched data unused — Table 2)");
}
